"""Tests for the decoupling-aware map app (§6.5)."""

import pytest

from repro.apps.map_app import MAP_BUFFER_COUNT, MapApp
from repro.core.ipl import ZoomingDistancePredictor
from repro.metrics.fdps import fdps


@pytest.fixture(scope="module")
def arms():
    app = MapApp()
    vsync_result, vsync_driver = app.run_vsync(0)
    dvsync_result, dvsync_driver = app.run_dvsync(0)
    return app, (vsync_result, vsync_driver), (dvsync_result, dvsync_driver)


def test_vsync_zoom_drops(arms):
    _, (vsync_result, _), _ = arms
    assert fdps(vsync_result) > 0.5


def test_dvsync_eliminates_zoom_drops(arms):
    _, (vsync_result, _), (dvsync_result, _) = arms
    assert fdps(dvsync_result) <= 0.1 * max(fdps(vsync_result), 0.1)


def test_latency_reduced_about_30_percent(arms):
    app, (vsync_result, vsync_driver), (dvsync_result, dvsync_driver) = arms
    vsync_report = app.report(vsync_result, vsync_driver)
    dvsync_report = app.report(dvsync_result, dvsync_driver)
    reduction = 1 - dvsync_report.mean_latency_ms / vsync_report.mean_latency_ms
    assert 0.2 < reduction < 0.45  # paper: 30.2 %


def test_zdp_overhead_matches_paper(arms):
    app, _, (dvsync_result, dvsync_driver) = arms
    report = app.report(dvsync_result, dvsync_driver)
    assert report.zdp_overhead_us_per_frame == pytest.approx(151.6, abs=1.0)


def test_zoom_frames_use_ipl(arms):
    _, _, (dvsync_result, _) = arms
    assert dvsync_result.extra["ipl_predictions"] > 0
    predicted = [f for f in dvsync_result.frames if f.input_predicted]
    assert len(predicted) > 0.9 * len(dvsync_result.frames)


def test_prediction_error_small(arms):
    app, _, (dvsync_result, dvsync_driver) = arms
    report = app.report(dvsync_result, dvsync_driver)
    # Pinch distance is normalized ~0.15-0.85; error should be tiny.
    assert report.prediction_error_mean < 0.02


def test_uses_five_buffers():
    assert MAP_BUFFER_COUNT == 5


def test_zdp_is_registered():
    app = MapApp()
    result, _ = app.run_dvsync(1)
    # ZDP overhead per prediction equals the class constant.
    overhead = result.extra["ipl_overhead_ns"] / max(1, result.extra["ipl_predictions"])
    assert overhead == pytest.approx(ZoomingDistancePredictor.overhead_ns, rel=0.01)
