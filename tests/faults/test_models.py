"""Tests for the individual fault models, one per pipeline seam."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, spec
from repro.metrics.fdps import fdps
from repro.testing import (
    light_params,
    make_animation,
    run_vsync,
    run_vsync_faulted,
)
from repro.units import ms, us


def schedule_of(*specs):
    return FaultSchedule(specs=tuple(specs))


def faulted_run(fault_spec, seed=0, duration_ms=600.0):
    driver = make_animation(light_params(), duration_ms=duration_ms)
    return run_vsync_faulted(driver, schedule_of(fault_spec), seed=seed)


# ------------------------------------------------------------- vsync jitter
def test_jitter_perturbs_tick_spacing_but_stays_grid_anchored():
    result = faulted_run(spec("vsync-jitter", sigma_us=500))
    times = result.extra["faults"]
    assert times["injected_total"] > 0
    presents = [p.present_time for p in result.presents]
    period = ms(1000) // 60
    # Grid anchoring: each present lands within a quarter period of the
    # nominal grid — jitter never random-walks away from the panel cadence.
    anchor = presents[0]
    for present in presents:
        offset = (present - anchor) % period
        drift = min(offset, period - offset)
        assert drift <= period // 4


def test_jitter_dropout_records_dropped_edges():
    result = faulted_run(spec("vsync-jitter", sigma_us=0, drop_prob=0.2))
    info = result.extra["faults"]
    assert info["injections"]["vsync-jitter"] > 0
    # Drops shrink the number of delivered edges: fewer presents than clean.
    clean = run_vsync(make_animation(light_params(), duration_ms=600.0))
    assert len(result.presents) < len(clean.presents)


def test_jitter_rejects_unsafe_params():
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("vsync-jitter", drop_prob=0.9)))
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("vsync-jitter", sigma_us=-1)))


# ------------------------------------------------------------------ thermal
def test_thermal_window_slows_frames_inside_it():
    fault = spec("thermal", factor=3.0, start_ms=200, end_ms=400)
    result = faulted_run(fault)
    clean = run_vsync(make_animation(light_params(), duration_ms=600.0))
    start = result.start_time
    in_window = [
        f for f in result.frames if ms(200) <= f.trigger_time - start < ms(400)
    ]
    clean_in_window = [
        f for f in clean.frames if ms(200) <= f.trigger_time - clean.start_time < ms(400)
    ]
    assert in_window and clean_in_window
    mean = lambda frames: sum(f.workload.total_ns for f in frames) / len(frames)
    assert mean(in_window) > 2.0 * mean(clean_in_window)


def test_thermal_leaves_frames_outside_window_untouched():
    fault = spec("thermal", factor=3.0, start_ms=200, end_ms=400)
    result = faulted_run(fault)
    clean = run_vsync(make_animation(light_params(), duration_ms=600.0))
    before = [f for f in result.frames if f.trigger_time - result.start_time < ms(200)]
    clean_before = [
        f for f in clean.frames if f.trigger_time - clean.start_time < ms(200)
    ]
    assert [f.workload for f in before] == [f.workload for f in clean_before]


def test_thermal_rejects_speedup_factor():
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("thermal", factor=0.5)))


def test_windowed_fault_rejects_inverted_window():
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("thermal", start_ms=500, end_ms=100)))


# ---------------------------------------------------------- buffer pressure
def test_buffer_pressure_denies_and_recovers():
    result = faulted_run(spec("buffer-pressure", deny_prob=0.4, retry_us=300))
    info = result.extra["faults"]
    assert info["injections"]["buffer-pressure"] > 0
    # The run still completes: denied dequeues retry rather than deadlock.
    assert result.presented_frames


def test_buffer_pressure_rejects_certain_denial():
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("buffer-pressure", deny_prob=1.0)))


# --------------------------------------------------------------- input loss
def test_input_loss_fires_on_interaction_runs():
    from repro.faults.drill import drill_driver
    from repro.testing import run_dvsync_faulted

    result = run_dvsync_faulted(
        drill_driver("interaction"), schedule_of(spec("input-loss", drop_prob=0.3))
    )
    info = result.extra["faults"]
    assert info["injections"]["input-loss"] > 0


def test_input_loss_drop_decision_is_stable_per_timestamp():
    from repro.faults.models import InputLossFault
    from repro.sim.rng import SeededRng

    fault = InputLossFault(
        spec("input-loss", drop_prob=0.5), SeededRng(3), lambda *a: None
    )
    decisions = {t: fault._drops_sample(t) for t in range(0, 10_000_000, 333_333)}
    # Re-asking gives the same verdicts: a dropped sample never flickers back.
    for timestamp, verdict in decisions.items():
        assert fault._drops_sample(timestamp) == verdict
    assert any(decisions.values()) and not all(decisions.values())


def test_input_loss_staleness_holds_back_recent_samples():
    from repro.faults.models import InputLossFault
    from repro.sim.rng import SeededRng

    fault = InputLossFault(
        spec("input-loss", drop_prob=0.0, staleness_us=5000),
        SeededRng(0),
        lambda *a: None,
    )

    class FakeScheduler:
        input_filters = []

    scheduler = FakeScheduler()
    fault._install(scheduler)
    (filter_fn,) = scheduler.input_filters
    now = ms(100)
    samples = [(now - us(10_000), 0.1), (now - us(1_000), 0.2)]
    kept = filter_fn(samples, now)
    assert kept == [(now - us(10_000), 0.1)]


# ------------------------------------------------------------ callback crash
def test_callback_crash_is_contained_and_counted():
    result = faulted_run(spec("callback-crash", prob=0.5))
    info = result.extra["faults"]
    assert info["injections"]["callback-crash"] > 0
    assert info["hal_contained"] > 0
    # Later listeners (metrics) still ran: presents were recorded normally.
    assert result.presented_frames
    assert "contained_exceptions" in result.extra


def test_callback_crash_rejects_bad_probability():
    with pytest.raises(ConfigurationError):
        FaultInjector(schedule_of(spec("callback-crash", prob=1.5)))
