"""Tests for the graceful-degradation watchdog."""

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.faults.drill import drill_driver
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import DegradationWatchdog, WatchdogThresholds
from repro.testing import run_dvsync_faulted


def standard_run(thresholds=None, seed=0):
    return run_dvsync_faulted(
        drill_driver("composite"),
        FaultSchedule.standard(),
        seed=seed,
        thresholds=thresholds,
    )


def test_standard_schedule_degrades_and_repromotes():
    result = standard_run()
    watchdog = result.extra["watchdog"]
    assert watchdog["degradations"] >= 1
    assert watchdog["repromotions"] >= 1
    assert watchdog["time_in_degraded_ns"] > 0
    assert watchdog["checks"] > 0


def test_degradations_appear_in_controller_switch_log():
    scheduler = DVSyncScheduler(
        drill_driver("composite"), PIXEL_5, DVSyncConfig(buffer_count=4)
    )
    FaultInjector(FaultSchedule.standard()).attach(scheduler)
    watchdog = DegradationWatchdog()
    scheduler.attach_watchdog(watchdog)
    scheduler.run()
    log = scheduler.controller.switch_log
    assert len(log) == watchdog.degradations + watchdog.repromotions
    # Events and switch log agree on times and directions.
    expected = [(e.time, e.action == "repromote") for e in watchdog.events]
    assert log == expected


def test_watchdog_event_times_are_monotone_and_alternating():
    scheduler = DVSyncScheduler(
        drill_driver("composite"), PIXEL_5, DVSyncConfig(buffer_count=4)
    )
    FaultInjector(FaultSchedule.standard()).attach(scheduler)
    watchdog = DegradationWatchdog()
    scheduler.attach_watchdog(watchdog)
    scheduler.run()
    times = [e.time for e in watchdog.events]
    assert times == sorted(times)
    actions = [e.action for e in watchdog.events]
    for first, second in zip(actions, actions[1:]):
        assert first != second  # degrade/repromote strictly alternate


def test_high_trip_threshold_prevents_degradation():
    lenient = WatchdogThresholds(trip_after=10_000)
    result = standard_run(thresholds=lenient)
    watchdog = result.extra["watchdog"]
    assert watchdog["degradations"] == 0
    assert watchdog["time_in_degraded_ns"] == 0


def test_watchdog_respects_app_driven_switch_off():
    scheduler = DVSyncScheduler(
        drill_driver("composite"), PIXEL_5, DVSyncConfig(buffer_count=4)
    )
    FaultInjector(FaultSchedule.standard()).attach(scheduler)
    watchdog = DegradationWatchdog()
    scheduler.attach_watchdog(watchdog)
    # The app turned the decoupled channel off itself; the watchdog must not
    # touch a channel it does not own.
    scheduler.controller.set_enabled(False, now=scheduler.sim.now)
    scheduler.run()
    assert watchdog.degradations == 0


def test_watchdog_is_single_use():
    watchdog = DegradationWatchdog()
    first = DVSyncScheduler(
        drill_driver("animation"), PIXEL_5, DVSyncConfig(buffer_count=4)
    )
    first.attach_watchdog(watchdog)
    second = DVSyncScheduler(
        drill_driver("animation", run=1), PIXEL_5, DVSyncConfig(buffer_count=4)
    )
    with pytest.raises(ConfigurationError):
        second.attach_watchdog(watchdog)


def test_summary_charges_open_degradation_interval():
    watchdog = DegradationWatchdog()
    watchdog._degraded_since = 100
    watchdog.time_in_degraded_ns = 50
    summary = watchdog.summary(now=300)
    assert summary["time_in_degraded_ns"] == 250
    assert summary["degraded_at_end"] is True


@pytest.mark.parametrize(
    "kwargs",
    [
        {"pacing_error_ns": 0},
        {"stall_ns": -1},
        {"pacing_window": 0},
        {"max_consecutive_ipl_fallbacks": 0},
        {"trip_after": 0},
        {"recover_after": 0},
    ],
)
def test_threshold_validation(kwargs):
    with pytest.raises(ConfigurationError):
        WatchdogThresholds(**kwargs)
