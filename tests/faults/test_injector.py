"""Tests for the seeded fault injector and exception containment."""

import pytest

from repro.errors import FaultContainmentError, InjectedFaultError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, spec
from repro.testing import light_params, make_animation, run_vsync_faulted
from repro.vsync.scheduler import VSyncScheduler


def make_scheduler(duration_ms=300.0):
    from repro.display.device import PIXEL_5

    driver = make_animation(light_params(), duration_ms=duration_ms)
    return VSyncScheduler(driver, PIXEL_5, buffer_count=3)


def test_result_extra_carries_fault_summary():
    schedule = FaultSchedule([spec("vsync-jitter", sigma_us=200)])
    result = run_vsync_faulted(
        make_animation(light_params(), duration_ms=300.0), schedule, seed=5
    )
    info = result.extra["faults"]
    assert info["schedule"] == schedule.describe()
    assert info["seed"] == 5
    assert set(info["injections"]) == {"vsync-jitter"}
    assert info["injected_total"] == sum(info["injections"].values())


def test_injector_is_single_use():
    injector = FaultInjector(FaultSchedule.none())
    injector.attach(make_scheduler())
    with pytest.raises(FaultContainmentError):
        injector.attach(make_scheduler())


def test_event_log_capped_but_counters_keep_counting():
    from repro.faults import injector as injector_module

    injector = FaultInjector(FaultSchedule.none())
    for i in range(injector_module._MAX_EVENTS + 10):
        injector._record(i, "fault", "detail")
    assert len(injector.events) == injector_module._MAX_EVENTS


def test_models_draw_from_independent_rngs():
    """Adding a second fault must not change the first fault's sequence."""
    solo = FaultSchedule([spec("vsync-jitter", sigma_us=300)])
    duo = FaultSchedule(
        [spec("vsync-jitter", sigma_us=300), spec("callback-crash", prob=0.3)]
    )
    # Same model index + kind => same child seed, regardless of siblings.
    solo_rng = FaultInjector(solo, seed=9).models[0].rng
    duo_rng = FaultInjector(duo, seed=9).models[0].rng
    # Schedules differ so root seeds differ; what must match is structure:
    # each injector spawns one child per model, deterministically.
    assert solo_rng.seed != 0 and duo_rng.seed != 0
    again = FaultInjector(solo, seed=9).models[0].rng
    assert [solo_rng.normal(0, 100) for _ in range(5)] == [
        again.normal(0, 100) for _ in range(5)
    ]


def test_containment_contains_only_injected_faults():
    scheduler = make_scheduler()
    injector = FaultInjector(FaultSchedule.none())
    injector.attach(scheduler)
    sim = scheduler.sim

    sim.schedule_at(sim.now + 10, lambda: (_ for _ in ()).throw(InjectedFaultError("x")))
    sim.run(until=sim.now + 20)
    assert len(injector.contained) == 1

    def real_bug():
        raise ValueError("a genuine bug")

    sim.schedule_at(sim.now + 10, real_bug)
    with pytest.raises(ValueError):
        sim.run(until=sim.now + 20)


def test_containment_budget_exceeded_raises_loudly():
    scheduler = make_scheduler()
    injector = FaultInjector(FaultSchedule.none(), containment_budget=3)
    injector.attach(scheduler)
    sim = scheduler.sim

    def boom():
        raise InjectedFaultError("persistent failure")

    for i in range(5):
        sim.schedule_at(sim.now + 1 + i, boom)
    with pytest.raises(FaultContainmentError):
        sim.run(until=sim.now + 10)
