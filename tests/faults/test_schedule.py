"""Tests for declarative fault schedules and the clause syntax."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultSpec, spec


def test_none_schedule_is_empty():
    schedule = FaultSchedule.none()
    assert schedule.empty
    assert schedule.describe() == "none"


def test_standard_schedule_contents():
    kinds = [s.kind for s in FaultSchedule.standard().specs]
    assert kinds == ["vsync-jitter", "thermal", "input-loss"]


def test_parse_single_clause_with_params():
    schedule = FaultSchedule.parse("vsync-jitter(sigma_us=500,drop_prob=0.1)")
    (clause,) = schedule.specs
    assert clause.kind == "vsync-jitter"
    assert clause.param("sigma_us", 0.0) == 500
    assert clause.param("drop_prob", 0.0) == pytest.approx(0.1)


def test_parse_multiple_clauses():
    schedule = FaultSchedule.parse("thermal(factor=2.5);input-loss")
    assert [s.kind for s in schedule.specs] == ["thermal", "input-loss"]


def test_parse_named_schedules():
    assert FaultSchedule.parse("standard") == FaultSchedule.standard()
    assert FaultSchedule.parse("none") == FaultSchedule.none()
    assert FaultSchedule.parse("  ") == FaultSchedule.none()


def test_describe_parse_roundtrip():
    schedule = FaultSchedule.standard()
    assert FaultSchedule.parse(schedule.describe()) == schedule


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        FaultSchedule.parse("cosmic-rays(prob=1)")
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="cosmic-rays")


def test_malformed_clause_rejected():
    with pytest.raises(ConfigurationError):
        FaultSchedule.parse("thermal(factor)")
    with pytest.raises(ConfigurationError):
        FaultSchedule.parse("thermal(factor=hot)")


def test_spec_helper_sorts_params():
    clause = spec("thermal", start_ms=10, factor=2.0)
    assert clause.params == (("factor", 2.0), ("start_ms", 10))


def test_param_default_lookup():
    clause = spec("thermal", factor=3.0)
    assert clause.param("factor", 2.0) == 3.0
    assert clause.param("missing", 42.0) == 42.0


def test_all_kinds_are_parseable():
    for kind in FAULT_KINDS:
        assert FaultSchedule.parse(kind).specs[0].kind == kind
