"""Dual-engine parity: the replay engine must be byte-exact, not just close.

Every test here compares canonical wire-form results (``result_to_wire`` →
``canonical_json``) between ``engine="event"`` and ``engine="fastpath"`` —
the same equivalence the CI bench gate (``scripts/check_fastpath.py``)
enforces over the full quick matrix, kept small enough to run on every
pytest invocation.

The suite turns the process-wide invariant checker *off* (overriding the
suite-wide strict fixture): an armed checker rides the event loop, which is
exactly the kind of observer that makes a spec fastpath-ineligible.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.exec.executor import execute_spec
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec, canonical_json
from repro.verify.oracle import ORACLE_SCENARIOS


@pytest.fixture(autouse=True)
def _verification_off():
    """Fastpath eligibility requires the process verify switch off."""
    from repro.verify import runtime

    runtime.set_enabled(False)
    yield
    runtime.reset()


def wire_text(result) -> str:
    return canonical_json(result_to_wire(result))


def run_both(spec: RunSpec) -> tuple[str, str]:
    """Wire forms under both engines; auto-fallback for non-trace-pure specs.

    A spec whose driver declares no replay profile cannot be *forced* onto
    the fastpath; for those the contract under test is that ``engine="auto"``
    falls back to the event engine and still matches it byte-for-byte.
    """
    from repro.errors import ConfigurationError

    event = execute_spec(dataclasses.replace(spec, engine="event"))
    try:
        fast = execute_spec(dataclasses.replace(spec, engine="fastpath"))
    except ConfigurationError:
        fast = execute_spec(dataclasses.replace(spec, engine="auto"))
    return wire_text(event), wire_text(fast)


def _oracle_cases():
    for name, scenario in ORACLE_SCENARIOS.items():
        for spec in scenario.spec_pair():
            for horizon in (None, 300_000_000):
                label = (
                    f"{name}/{spec.architecture}"
                    f"/h={'inf' if horizon is None else horizon}"
                )
                yield pytest.param(
                    dataclasses.replace(spec, verify=False, horizon=horizon),
                    id=label,
                )


@pytest.mark.parametrize("spec", _oracle_cases())
def test_oracle_corpus_is_byte_identical_under_both_engines(spec):
    event_wire, fast_wire = run_both(spec)
    assert event_wire == fast_wire


def _stress_specs():
    stress = DriverSpec.of(
        "repro.exec.builders:burst_animation",
        name="parity-stress",
        target_fdps=9.0,
        refresh_hz=120,
        duration_ms=400,
        bursts=3,
        burst_period_ms=700,
    )
    return [
        pytest.param(
            RunSpec(
                driver=stress,
                device=MATE_60_PRO,
                architecture="vsync",
                buffer_count=2,
                start_time=7_000_000,
            ),
            id="vsync/offset-start/2-buffers",
        ),
        pytest.param(
            RunSpec(
                driver=stress,
                device=MATE_60_PRO,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=3, prerender_limit=2),
                start_time=7_000_000,
            ),
            id="dvsync/offset-start/tight-limit",
        ),
        pytest.param(
            RunSpec(
                driver=stress,
                device=PIXEL_5,
                architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=7, dtv_enabled=False),
            ),
            id="dvsync/dtv-ablated/7-buffers",
        ),
    ]


@pytest.mark.parametrize("spec", _stress_specs())
def test_stress_shapes_are_byte_identical(spec):
    """Offset start times, tight pre-render limits, DTV ablation."""
    event_wire, fast_wire = run_both(spec)
    assert event_wire == fast_wire


def test_game_trace_spec_parity():
    """A recorded game trace (TraceDriver) replays byte-identically."""
    driver = DriverSpec.of(
        "repro.experiments.fig14_games:build_game_driver",
        game="Survive",
        repetition=0,
    )
    device = MATE_60_PRO.at_refresh(60)
    for spec in (
        RunSpec(driver=driver, device=device, architecture="vsync", buffer_count=3),
        RunSpec(
            driver=driver,
            device=device,
            architecture="dvsync",
            dvsync=DVSyncConfig(buffer_count=5),
        ),
    ):
        event_wire, fast_wire = run_both(spec)
        assert event_wire == fast_wire


def test_looping_trace_driver_parity():
    """``loop=True`` wraps workload indexes; both engines must agree."""
    from repro import simulate
    from repro.core.api import SimConfig
    from repro.workloads.drivers import TraceDriver
    from repro.workloads.frametrace import FrameTrace
    from repro.pipeline.frame import FrameWorkload

    def build():
        workloads = [
            FrameWorkload(ui_ns=4_000_000, render_ns=5_000_000, gpu_ns=2_000_000),
            FrameWorkload(ui_ns=9_000_000, render_ns=8_000_000, gpu_ns=0),
            FrameWorkload(ui_ns=2_000_000, render_ns=3_000_000, gpu_ns=1_000_000),
        ]
        # 3 recorded frames at 60 Hz, replayed on a 120 Hz panel: demand
        # outpaces the recording, so frame indexes must wrap around.
        trace = FrameTrace(name="loop-parity", refresh_hz=60, workloads=workloads)
        return TraceDriver(trace, loop=True)

    device = MATE_60_PRO.at_refresh(120)
    for arch in ("vsync", "dvsync"):
        results = []
        for engine in ("event", "fastpath"):
            result = simulate(
                build(),
                device,
                architecture=arch,
                config=SimConfig(engine=engine),
                verify=False,
            )
            results.append(wire_text(result))
        assert results[0] == results[1], arch


def test_golden_corpus_digests_are_engine_independent():
    """Golden-trace digests come out identical from either engine.

    The committed corpus digests the run *with* the invariant checker's
    verdict riding in ``extra`` (checker runs are event-only by design), so
    the comparison here strips the checker: every trace-pure golden spec
    must produce the same behavioural digest under both engines.
    """
    from repro.fastpath.engine import spec_ineligibility
    from repro.fastpath.profile import load_compiled
    from repro.verify.golden import golden_specs, run_digest

    covered = 0
    for name, spec in golden_specs().items():
        bare = dataclasses.replace(spec, verify=False)
        if spec_ineligibility(bare) is not None:
            continue
        if load_compiled(bare.driver)[1] is None:
            continue
        event = execute_spec(dataclasses.replace(bare, engine="event"))
        fast = execute_spec(dataclasses.replace(bare, engine="fastpath"))
        assert run_digest(fast) == run_digest(event), name
        covered += 1
    assert covered >= 4  # the steady/droppy pairs at minimum
