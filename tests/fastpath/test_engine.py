"""Engine selection: auto fallback, forced-fastpath errors, hash neutrality."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.executor import execute_spec
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec, canonical_json
from repro.fastpath.engine import (
    get_default_engine,
    reset_default_engine,
    resolve_engine,
    set_default_engine,
    spec_ineligibility,
)


@pytest.fixture(autouse=True)
def _engine_default_isolation():
    reset_default_engine()
    yield
    reset_default_engine()


def _burst_spec(**overrides) -> RunSpec:
    driver = DriverSpec.of(
        "repro.exec.builders:burst_animation",
        name="engine-test",
        target_fdps=3.0,
        refresh_hz=60,
        duration_ms=150,
    )
    fields = dict(driver=driver, device=PIXEL_5, architecture="vsync", buffer_count=3)
    fields.update(overrides)
    return RunSpec(**fields)


# --------------------------------------------------------------- resolution
def test_resolve_engine_accepts_known_names_and_rejects_unknown():
    assert resolve_engine("event") == "event"
    assert resolve_engine("fastpath") == "fastpath"
    assert resolve_engine(None) == get_default_engine()
    with pytest.raises(ConfigurationError, match="unknown engine"):
        resolve_engine("warp")


def test_process_default_comes_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "event")
    reset_default_engine()
    assert get_default_engine() == "event"
    assert resolve_engine("auto") == "event"
    set_default_engine("fastpath")
    assert resolve_engine("auto") == "fastpath"


def test_invalid_environment_engine_raises(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    reset_default_engine()
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE"):
        get_default_engine()


# ------------------------------------------------------------- eligibility
def test_spec_ineligibility_names_the_observer():
    from repro.verify import runtime

    runtime.set_enabled(False)  # the suite-wide strict fixture resets this
    assert spec_ineligibility(_burst_spec(verify=False)) is None
    assert "invariant checker" in spec_ineligibility(_burst_spec(verify=True))
    assert "telemetry" in spec_ineligibility(_burst_spec(telemetry=True))
    disabled = _burst_spec(
        architecture="dvsync",
        buffer_count=None,
        dvsync=DVSyncConfig(buffer_count=4, enabled=False),
    )
    assert "fallback" in spec_ineligibility(disabled)


def test_process_wide_verify_switch_blocks_fastpath():
    # The suite-wide strict fixture keeps the switch armed in this module.
    reason = spec_ineligibility(_burst_spec(verify=False))
    assert reason is not None and "verification switch" in reason


# ---------------------------------------------------------------- fallback
def test_forced_fastpath_raises_for_ineligible_spec():
    spec = _burst_spec(verify=True, engine="fastpath")
    with pytest.raises(ConfigurationError, match="cannot replay this spec"):
        execute_spec(spec)


def test_auto_falls_back_to_event_for_non_trace_pure_driver():
    """A driver without a replay profile silently takes the event engine."""
    from repro.verify import runtime

    runtime.set_enabled(False)
    try:
        driver = DriverSpec.of(
            "repro.experiments.fig07_touch_latency:build_touch_driver",
            repetition=0,
        )
        spec = RunSpec(
            driver=driver, device=PIXEL_5, architecture="dvsync", engine="auto"
        )
        auto = execute_spec(spec)
        event = execute_spec(dataclasses.replace(spec, engine="event"))
        assert canonical_json(result_to_wire(auto)) == canonical_json(
            result_to_wire(event)
        )
    finally:
        runtime.reset()


def test_forced_fastpath_raises_for_live_non_trace_pure_driver():
    from repro import simulate
    from repro.core.api import SimConfig
    from repro.pipeline.driver import ScenarioDriver
    from repro.pipeline.frame import FrameWorkload

    class Opaque(ScenarioDriver):
        def wants_frame(self, content_timestamp, now):
            return now - self.start_time < 50_000_000

        def finished(self, now):
            return now - self.start_time >= 50_000_000

        def make_workload(self, frame_index, content_timestamp):
            return FrameWorkload(ui_ns=1_000_000, render_ns=1_000_000, gpu_ns=0)

    with pytest.raises(ConfigurationError, match="cannot replay this run"):
        simulate(
            Opaque(),
            PIXEL_5,
            architecture="vsync",
            config=SimConfig(engine="fastpath"),
            verify=False,
        )


# -------------------------------------------------------------------- hash
def test_engine_rides_outside_the_content_hash():
    """Both engines are byte-exact, so results are engine-interchangeable."""
    base = _burst_spec()
    for engine in ("auto", "event", "fastpath"):
        assert dataclasses.replace(base, engine=engine).content_hash() == (
            base.content_hash()
        )
    with pytest.raises(ConfigurationError, match="unknown engine"):
        _burst_spec(engine="warp")
