"""Tests for the declarative study engine (repro.study)."""

import pytest

from repro.display.device import PIXEL_5
from repro.errors import BatchExecutionError, ConfigurationError, ExecutionError
from repro.exec.executor import Executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.metrics.fdps import fdps
from repro.study import (
    Cell,
    CompositeStudy,
    Study,
    cell_key,
    execute_studies,
)
from repro.telemetry import runtime as telemetry_runtime


def _spec(name="study-test", **overrides):
    fields = dict(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation", name=name, target_fdps=2.0
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def _failing_spec(name="study-crash"):
    return _spec(
        name,
        driver=DriverSpec.of(
            "repro.exec.builders:chaos_driver", name=name, mode="raise"
        ),
    )


@pytest.fixture
def executor():
    with Executor(jobs=1, cache=False) as ex:
        yield ex


# ---------------------------------------------------------------- structure
def test_cell_requires_exactly_one_payload():
    with pytest.raises(ConfigurationError):
        Cell(coords={"a": 1})
    with pytest.raises(ConfigurationError):
        Cell(coords={"a": 1}, spec=_spec(), thunk=lambda: 1)


def test_duplicate_cell_coordinates_rejected():
    study = Study("dup")
    study.add(_spec("a"), arch="vsync", rep=0)
    with pytest.raises(ConfigurationError):
        study.add(_spec("b"), rep=0, arch="vsync")  # same key, any kwarg order


def test_cell_key_is_order_insensitive():
    assert cell_key({"a": 1, "b": 2}) == cell_key({"b": 2, "a": 1})


def test_grid_expands_product_and_skips_none():
    study = Study("grid")
    study.grid(
        lambda arch, rep: None if arch == "skip" else _spec(f"{arch}#{rep}"),
        arch=["vsync", "skip"],
        rep=[0, 1],
    )
    assert len(study) == 2
    assert [cell.coords for cell in study.cells] == [
        {"arch": "vsync", "rep": 0},
        {"arch": "vsync", "rep": 1},
    ]


def test_grid_accepts_live_thunks_and_rejects_junk():
    study = Study("grid-live")
    study.grid(lambda rep: (lambda: rep * 10), rep=[0, 1])
    assert all(cell.thunk is not None for cell in study.cells)
    with pytest.raises(ConfigurationError):
        Study("grid-bad").grid(lambda rep: 42, rep=[0])


# ---------------------------------------------------------------- execution
def test_execute_keys_results_and_selects(executor):
    study = Study("exec")
    for rep in range(2):
        study.add(_spec(f"run#{rep}"), arch="vsync", rep=rep)
    result = study.execute(executor=executor)
    assert len(result.select(arch="vsync")) == 2
    assert result.get(rep=1) is result.select(rep=1)[0]
    with pytest.raises(ExecutionError):
        result.get(arch="vsync")  # two matches
    with pytest.raises(ExecutionError):
        result.get(arch="nope")  # zero matches


def test_whole_matrix_is_one_batch_with_dedup(executor):
    study = Study("batch")
    shared = _spec("shared-baseline")
    study.add(shared, arch="vsync", rep=0)
    study.add(shared, arch="vsync", rep=1)  # same content hash
    study.add(_spec("other"), arch="dvsync", rep=0)
    [result], stats = execute_studies([study], executor=executor)
    assert executor.stats.batches == 1
    assert executor.stats.deduped == 1
    assert stats.spec_cells == 3
    assert stats.unique_specs == 2
    assert stats.dedup_hits == 1
    assert result.select(arch="vsync")[0] is not None


def test_union_of_studies_is_still_one_batch(executor):
    first = Study("one")
    first.add(_spec("alpha"), rep=0)
    second = Study("two")
    second.add(_spec("alpha"), rep=0)  # dedups across studies
    second.add(_spec("beta"), rep=1)
    [res_a, res_b], stats = execute_studies([first, second], executor=executor)
    assert executor.stats.batches == 1
    assert stats.studies == 2
    assert stats.dedup_hits == 1
    assert res_a.get(rep=0) is not None
    assert res_b.get(rep=1) is not None


def test_live_cells_run_in_process(executor):
    order = []
    study = Study("live")
    study.add(_spec("spec-cell"), kind="spec")
    study.add_live(lambda: order.append("a") or "live-a", kind="live-a")
    study.add_live(lambda: order.append("b") or "live-b", kind="live-b")
    result = study.execute(executor=executor)
    assert order == ["a", "b"]  # insertion order
    assert result.get(kind="live-a") == "live-a"
    assert result.get(kind="spec") is not None


def test_run_applies_analysis(executor):
    study = Study(
        "analyzed", analyze=lambda result: fdps(result.get(rep=0))
    )
    study.add(_spec("analyzed"), rep=0)
    value = study.run(executor=executor)
    assert isinstance(value, float)


def test_run_without_analysis_raises(executor):
    study = Study("no-analysis")
    study.add(_spec("no-analysis"), rep=0)
    with pytest.raises(ConfigurationError):
        study.run(executor=executor)


# ------------------------------------------------------------------ failure
def test_fail_fast_raises_batch_error():
    study = Study("failfast")
    study.add(_spec("ok-arm"), rep=0)
    study.add(_failing_spec(), rep=1)
    with Executor(jobs=1, cache=False, retries=0, policy="fail-fast") as ex:
        with pytest.raises(BatchExecutionError):
            study.execute(executor=ex)


def test_keep_going_leaves_keyed_holes_and_drops_pairs():
    study = Study("holes")
    study.add(_spec("hole-base#0"), arch="vsync", rep=0)
    study.add(_spec("hole-base#1"), arch="vsync", rep=1)
    study.add(_failing_spec(), arch="dvsync", rep=0)
    study.add(_spec("hole-impr#1"), arch="dvsync", rep=1)
    with Executor(jobs=1, cache=False, retries=0, policy="keep-going") as ex:
        result = study.execute(executor=ex)
    assert result.get(arch="dvsync", rep=0) is None
    holes = result.holes()
    assert len(holes) == 1 and holes[0][0].coords == {"arch": "dvsync", "rep": 0}
    assert holes[0][1] is not None  # structured failure record
    assert result.stats.holes == 1
    # the rep-0 pair vanishes; rep-1 survives
    pairs = result.pairs({"arch": "vsync"}, {"arch": "dvsync"})
    assert len(pairs) == 1
    assert all(value is not None for pair in pairs for value in pair)


def test_pairs_rejects_mismatched_slices(executor):
    study = Study("ragged")
    study.add(_spec("r0"), arch="vsync", rep=0)
    study.add(_spec("r1"), arch="vsync", rep=1)
    study.add(_spec("r2"), arch="dvsync", rep=0)
    result = study.execute(executor=executor)
    with pytest.raises(ExecutionError):
        result.pairs({"arch": "vsync"}, {"arch": "dvsync"})


# -------------------------------------------------------------- aggregation
def test_mean_and_stats_skip_holes(executor):
    study = Study("agg")
    study.add_live(lambda: 1.0, rep=0)
    study.add_live(lambda: 3.0, rep=1)
    result = study.execute(executor=executor)
    assert result.mean_of(lambda v: v) == 2.0
    mean, sd = result.stats_of(lambda v: v)
    assert mean == 2.0
    assert sd == pytest.approx(1.4142, abs=1e-3)
    assert result.stats_of(lambda v: v, rep=0) == (1.0, 0.0)  # n=1 -> sd 0
    assert result.mean_of(lambda v: v, rep=99) == 0.0  # empty slice


# ---------------------------------------------------------------- composite
def test_composite_flattens_parts_into_one_batch(executor):
    left = Study("left", analyze=lambda result: ("L", result.get(rep=0)))
    left.add(_spec("composite-shared"), rep=0)
    right = Study("right", analyze=lambda result: ("R", result.get(rep=0)))
    right.add(_spec("composite-shared"), rep=0)  # dedups against left
    composite = CompositeStudy(
        "both", parts=[left, right], combine=lambda parts: dict(parts)
    )
    assert len(composite) == 2
    merged = composite.run(executor=executor)
    assert executor.stats.batches == 1
    assert executor.stats.deduped == 1
    assert set(merged) == {"L", "R"}
    assert merged["L"] is not None


def test_composite_without_combine_returns_part_list(executor):
    part = Study("solo", analyze=lambda result: "analyzed")
    part.add_live(lambda: 1, rep=0)
    composite = CompositeStudy("wrap", parts=[part])
    assert composite.run(executor=executor) == ["analyzed"]


# ---------------------------------------------------------------- telemetry
def test_study_telemetry_counters(executor):
    telemetry_runtime.reset()
    telemetry_runtime.set_enabled(True)
    try:
        study = Study("telemetry")
        shared = _spec("telemetry-shared")
        study.add(shared, rep=0)
        study.add(shared, rep=1)
        study.add_live(lambda: 1, rep=2)
        study.execute(executor=executor)
        metrics = telemetry_runtime.collector().exec_metrics
        assert metrics.counter("study.cells").value == 3
        assert metrics.counter("study.dedup_hits").value == 1
        assert metrics.counter("study.holes").value == 0
    finally:
        telemetry_runtime.set_enabled(False)
        telemetry_runtime.reset()
