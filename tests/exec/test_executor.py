"""Tests for the Executor: backends, cache, dedupe, default wiring."""

import pytest

from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache, code_salt
from repro.exec.executor import (
    Executor,
    execute_spec,
    get_default_executor,
    set_default_executor,
    using_executor,
)
from repro.exec.serialize import normalize_result, result_to_wire
from repro.exec.spec import DriverSpec, RunSpec


def _spec(name="exec-test", **overrides):
    fields = dict(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation", name=name, target_fdps=2.0
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def test_run_matches_direct_execution():
    spec = _spec()
    with Executor(jobs=1) as executor:
        pooled = executor.run(spec)
    direct = normalize_result(execute_spec(spec))
    assert result_to_wire(pooled) == result_to_wire(direct)


def test_map_preserves_order_and_dedupes():
    specs = [_spec("order-a"), _spec("order-b"), _spec("order-a")]
    with Executor(jobs=1) as executor:
        results = executor.map(specs)
        assert executor.stats.runs_executed == 2
        assert executor.stats.deduplicated == 1
    assert result_to_wire(results[0]) == result_to_wire(results[2])
    assert result_to_wire(results[0]) != result_to_wire(results[1])


def test_cache_round_trip_equals_fresh_run(tmp_path):
    spec = _spec("cache-roundtrip")
    with Executor(jobs=1, cache=True, cache_dir=tmp_path) as executor:
        fresh = executor.run(spec)
        assert executor.stats.cache_misses == 1
        cached = executor.run(spec)
        assert executor.stats.cache_hits == 1
        assert executor.stats.runs_executed == 1
    assert result_to_wire(cached) == result_to_wire(fresh)


def test_warm_cache_serves_without_executing(tmp_path):
    spec = _spec("cache-warm")
    with Executor(jobs=1, cache=True, cache_dir=tmp_path) as executor:
        executor.run(spec)
    with Executor(jobs=1, cache=True, cache_dir=tmp_path) as warm:
        warm.run(spec)
        assert warm.stats.runs_executed == 0
        assert warm.stats.cache_hits == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    spec = _spec("cache-corrupt")
    cache = ResultCache(tmp_path)
    with Executor(jobs=1, cache=cache) as executor:
        executor.run(spec)
    (entry,) = cache.entries()
    entry.write_text("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(spec) is None
    assert fresh.stats.misses == 1
    assert not entry.exists()


def test_cache_key_includes_code_salt(tmp_path):
    spec = _spec("cache-salt")
    alpha = ResultCache(tmp_path, salt="aaaa")
    beta = ResultCache(tmp_path, salt="bbbb")
    with Executor(jobs=1, cache=alpha) as executor:
        executor.run(spec)
    assert beta.get(spec) is None  # different code version, different key
    assert alpha.key(spec) == f"{spec.content_hash()}-aaaa"
    assert len(code_salt()) == 12


def test_cache_describe_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    with Executor(jobs=1, cache=cache) as executor:
        executor.map([_spec("cache-desc-a"), _spec("cache-desc-b")])
    assert len(cache.entries()) == 2
    assert cache.total_bytes() > 0
    assert "2 entries" in cache.describe()
    assert cache.clear() == 2
    assert cache.entries() == []


def test_process_pool_matches_inprocess():
    specs = [_spec("pool-a"), _spec("pool-b")]
    with Executor(jobs=2, backend="process") as pooled:
        pool_results = pooled.map(specs)
    with Executor(jobs=1) as serial:
        serial_results = serial.map(specs)
    assert [result_to_wire(r) for r in pool_results] == [
        result_to_wire(r) for r in serial_results
    ]


def test_executor_validates_configuration():
    with pytest.raises(ConfigurationError, match="jobs"):
        Executor(jobs=0)
    with pytest.raises(ConfigurationError, match="backend"):
        Executor(backend="threads")


def test_default_executor_is_hermetic_and_swappable():
    previous = set_default_executor(None)
    try:
        default = get_default_executor()
        assert default.backend == "inprocess"
        assert default.cache is None
        replacement = Executor(jobs=1)
        with using_executor(replacement):
            assert get_default_executor() is replacement
        assert get_default_executor() is default
    finally:
        set_default_executor(previous)


def test_default_executor_reads_environment(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_JOBS", "2")
    monkeypatch.setenv("REPRO_EXEC_BACKEND", "inprocess")
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    previous = set_default_executor(None)
    try:
        default = get_default_executor()
        assert default.jobs == 2
        assert default.backend == "inprocess"
        assert default.cache is not None
        assert default.cache.root == tmp_path
    finally:
        set_default_executor(previous)


def test_stats_snapshot_and_since():
    with Executor(jobs=1) as executor:
        before = executor.stats.snapshot()
        executor.map([_spec("stats-a"), _spec("stats-a")])
        delta = executor.stats.since(before)
    assert delta.runs_executed == 1
    assert delta.deduplicated == 1
    assert delta.total_requests == 2
    assert "1 simulated" in delta.describe()
