"""Tests for the lossless RunResult wire form."""

import json

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.serialize import (
    RESULT_SCHEMA_VERSION,
    jsonable,
    normalize_result,
    result_from_wire,
    result_to_wire,
)
from repro.exec.spec import DriverSpec, RunSpec
from repro.exec.executor import execute_spec


def _result(architecture="vsync", faults=None, watchdog=False):
    spec = RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="wire-test",
            target_fdps=2.0,
        ),
        device=PIXEL_5,
        architecture=architecture,
        buffer_count=3 if architecture == "vsync" else None,
        dvsync=DVSyncConfig(buffer_count=4) if architecture == "dvsync" else None,
        faults=faults,
        watchdog=watchdog,
    )
    return execute_spec(spec)


def test_round_trip_is_lossless():
    result = _result()
    clone = result_from_wire(result_to_wire(result))
    assert clone.frames == result.frames
    assert clone.drops == result.drops
    assert clone.presents == result.presents
    assert clone.device == result.device
    assert clone.scheduler == result.scheduler
    assert clone.end_time == result.end_time


def test_wire_form_is_json_and_bit_stable():
    wire = result_to_wire(_result())
    text = json.dumps(wire, sort_keys=True)
    again = result_to_wire(result_from_wire(json.loads(text)))
    assert json.dumps(again, sort_keys=True) == text


def test_round_trip_covers_dvsync_extras():
    result = _result(
        architecture="dvsync",
        faults="vsync-jitter(sigma_us=300)",
        watchdog=True,
    )
    clone = normalize_result(result)
    assert clone.extra.get("faults") == jsonable(result.extra["faults"])
    assert clone.scheduler == "dvsync"
    # Normalization is idempotent: a second round-trip changes nothing.
    assert result_to_wire(clone) == result_to_wire(normalize_result(clone))


def test_schema_mismatch_is_rejected():
    wire = result_to_wire(_result())
    wire["schema"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        result_from_wire(wire)


def test_jsonable_converts_tuples_recursively():
    assert jsonable({"a": (1, (2, 3)), "b": [4, (5,)]}) == {
        "a": [1, [2, 3]],
        "b": [4, [5]],
    }
