"""Containment suite for the resource-governance layer.

The acceptance scenarios live here: a budget trip is *deterministic* (the
same spec + budget fails at the identical simulator event on every backend
and both engines, with byte-identical failure records), an OOM under the
worker address-space cap settles into a structured ``oom`` failure without
killing the pool or poisoning wave siblings, and the cache disk quota holds
after every store with LRU eviction that never evicts the entry just
written.
"""

import dataclasses
import json
import os

import pytest

from repro.display.device import PIXEL_5
from repro.errors import BudgetExceededError, ConfigurationError, WorkloadError
from repro.exec.cache import ResultCache
from repro.exec.executor import Executor, execute_spec
from repro.exec.governor import (
    BudgetGuard,
    ResourceBudget,
    address_space_cap,
    budget_from_env,
    counting_probe,
    measure_run_events,
)
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec
from repro.exec.supervisor import RetryPolicy

FAST_RETRY = RetryPolicy(retries=1, base_delay_s=0.01, max_delay_s=0.05)


def _burst(name, budget=None, **params):
    params.setdefault("target_fdps", 3.0)
    params.setdefault("duration_ms", 150.0)
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation", name=name, **params
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
        budget=budget,
    )


def _storm(name, budget=None):
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:event_storm", name=name, duration_ms=1000.0
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
        budget=budget,
    )


# ------------------------------------------------------------ budget object
def test_resource_budget_validates_and_describes():
    with pytest.raises(ConfigurationError, match="max_events"):
        ResourceBudget(max_events=0)
    with pytest.raises(ConfigurationError, match="max_sim_ns"):
        ResourceBudget(max_sim_ns=-5)
    with pytest.raises(ConfigurationError, match="memory_mb"):
        ResourceBudget(memory_mb=True)
    with pytest.raises(ConfigurationError, match="cache_quota_mb"):
        ResourceBudget(cache_quota_mb=0.0)
    budget = ResourceBudget(max_events=100, cache_quota_mb=1.5)
    assert budget.governs_sim and not budget.is_noop
    assert budget.cache_quota_bytes == int(1.5 * 1024 * 1024)
    assert ResourceBudget.from_wire(budget.to_wire()) == budget
    assert "max_events=100" in budget.describe()
    assert ResourceBudget().is_noop
    assert not ResourceBudget(memory_mb=64).governs_sim
    assert "unlimited" in ResourceBudget().describe()


def test_budget_rides_wire_but_not_content_hash():
    spec = _burst("hash-neutral")
    capped = dataclasses.replace(spec, budget=ResourceBudget(max_events=9))
    assert spec.content_hash() == capped.content_hash()
    wire = capped.to_wire()
    assert wire["budget"]["max_events"] == 9
    assert RunSpec.from_wire(wire).budget == capped.budget
    assert RunSpec.from_wire(spec.to_wire()).budget is None


def test_budget_from_env_knobs(monkeypatch):
    for name in ("REPRO_MAX_EVENTS", "REPRO_MEMORY_MB", "REPRO_CACHE_QUOTA_MB"):
        monkeypatch.delenv(name, raising=False)
    assert budget_from_env() is None
    monkeypatch.setenv("REPRO_MAX_EVENTS", "500")
    monkeypatch.setenv("REPRO_MEMORY_MB", "256")
    monkeypatch.setenv("REPRO_CACHE_QUOTA_MB", "1.5")
    assert budget_from_env() == ResourceBudget(
        max_events=500, memory_mb=256, cache_quota_mb=1.5
    )
    monkeypatch.setenv("REPRO_MAX_EVENTS", "lots")
    with pytest.raises(ConfigurationError, match="REPRO_MAX_EVENTS"):
        budget_from_env()
    monkeypatch.setenv("REPRO_MAX_EVENTS", "0")
    with pytest.raises(ConfigurationError, match="REPRO_MAX_EVENTS"):
        budget_from_env()
    monkeypatch.setenv("REPRO_MAX_EVENTS", "500")
    monkeypatch.setenv("REPRO_CACHE_QUOTA_MB", "-1")
    with pytest.raises(ConfigurationError, match="REPRO_CACHE_QUOTA_MB"):
        budget_from_env()


# -------------------------------------------------------------- guard logic
def test_budget_guard_trips_at_exact_event_and_deadline():
    guard = BudgetGuard(max_events=3)
    guard.on_event(10, 1)
    guard.on_event(20, 2)
    with pytest.raises(BudgetExceededError, match=r"max_events=3 at t=30 ns"):
        guard.on_event(30, 3)
    timed = BudgetGuard(max_sim_ns=100, start_time=50)
    timed.on_event(150, 1)  # exactly at the deadline: still executes
    with pytest.raises(BudgetExceededError, match=r"deadline t=150 ns"):
        timed.on_event(151, 2)
    assert timed.events == 1  # the over-deadline event was never counted


def _replay_tick_run(guard, first_time, period, count, first_seq, seq_counter):
    """The live engine's event-by-event accounting of one drained tick run."""
    for j in range(1, count + 1):
        time = first_time + (j - 1) * period
        seq = first_seq if j == 1 else seq_counter + j - 2
        guard.on_event(time, seq)


def test_on_tick_run_matches_event_by_event_accounting():
    budgets = (
        [ResourceBudget(max_events=n) for n in range(1, 10)]
        + [
            ResourceBudget(max_sim_ns=ns)
            for ns in (900, 1000, 1049, 1100, 1250, 1500, 2000)
        ]
        + [ResourceBudget(max_events=5, max_sim_ns=1200)]
    )
    for budget in budgets:
        bulk = BudgetGuard.for_budget(budget)
        single = BudgetGuard.for_budget(budget)
        bulk_msg = single_msg = None
        try:
            bulk.on_tick_run(1000, 100, 6, 7, 40)
        except BudgetExceededError as exc:
            bulk_msg = str(exc)
        try:
            _replay_tick_run(single, 1000, 100, 6, 7, 40)
        except BudgetExceededError as exc:
            single_msg = str(exc)
        assert bulk_msg == single_msg, budget.describe()
        assert bulk.events == single.events, budget.describe()


# ---------------------------------------------------------- engine parity
@pytest.fixture
def verification_off():
    """Forced-fastpath runs require the process verify switch off (the
    suite-wide strict fixture turns it on)."""
    from repro.verify import runtime

    runtime.set_enabled(False)
    yield
    runtime.reset()


def test_measure_run_events_equal_on_both_engines(verification_off):
    spec = _burst("count-parity")
    with counting_probe() as probe:
        execute_spec(dataclasses.replace(spec, engine="event"))
    event_count = probe.events
    with counting_probe() as probe:
        execute_spec(dataclasses.replace(spec, engine="fastpath"))
    assert probe.events == event_count
    assert measure_run_events(spec) == event_count
    assert event_count > 4


def test_budget_trip_byte_identical_across_engines(verification_off):
    spec = _burst("engine-trip", duration_ms=200.0, target_fdps=6.0)
    natural = measure_run_events(spec)
    for budget in (
        ResourceBudget(max_events=natural // 2),
        ResourceBudget(max_sim_ns=100_000_000),  # 100ms of a 200ms run
    ):
        messages = {}
        for engine in ("event", "fastpath"):
            with pytest.raises(BudgetExceededError) as excinfo:
                execute_spec(
                    dataclasses.replace(spec, budget=budget, engine=engine)
                )
            messages[engine] = str(excinfo.value)
        assert messages["event"] == messages["fastpath"], budget.describe()


# ------------------------------------------------------- executor containment
def test_budget_failure_identical_across_backends_and_never_retried():
    spec = _storm("backend-parity", budget=ResourceBudget(max_events=40))

    def run(backend):
        with Executor(
            jobs=2, backend=backend, policy="keep-going", retries=FAST_RETRY
        ) as executor:
            outcome = executor.map_outcome([spec])
            assert executor.stats.quarantined == 0
            assert executor.stats.budget_trips == 1
            assert executor.stats.retries == 0
        (failure,) = outcome.failures
        assert failure.kind == "budget"
        assert failure.attempts == 1  # deterministic: a retry would be waste
        assert failure.traceback is None
        return json.dumps(failure.to_wire(), sort_keys=True)

    assert run("inprocess") == run("process")


def test_budget_failure_does_not_poison_the_unbudgeted_spec():
    capped = _burst("relax", budget=ResourceBudget(max_events=5))
    uncapped = dataclasses.replace(capped, budget=None)
    assert capped.content_hash() == uncapped.content_hash()
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        first = executor.map_outcome([capped])
        assert first.failures[0].kind == "budget"
        assert executor.stats.quarantined == 0
        # Same content, no budget: the spec really runs (and succeeds)
        # instead of being served the stale budget record.
        second = executor.map_outcome([uncapped])
        assert second.results[0] is not None


def test_executor_default_budget_applies_to_uncapped_specs():
    with Executor(
        jobs=1,
        policy="keep-going",
        retries=0,
        budget=ResourceBudget(max_events=5),
    ) as executor:
        outcome = executor.map_outcome([_burst("inherit")])
    assert outcome.failures[0].kind == "budget"
    # a spec's own budget outranks the executor default
    with Executor(
        jobs=1,
        policy="keep-going",
        retries=0,
        budget=ResourceBudget(max_events=5),
    ) as executor:
        generous = _burst("own-budget", budget=ResourceBudget(max_events=10_000))
        assert executor.run(generous) is not None


def test_oom_under_address_space_cap_is_contained():
    hog = RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:memory_hog",
            name="oom-hog",
            allocate_mb=8192,
            chunk_mb=64,
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
        budget=ResourceBudget(memory_mb=1024),
    )
    specs = [_burst("oom-sib-1"), hog, _burst("oom-sib-2")]
    with Executor(
        jobs=2, backend="process", policy="keep-going", retries=FAST_RETRY
    ) as executor:
        outcome = executor.map_outcome(specs)
        assert outcome.results[0] is not None
        assert outcome.results[2] is not None
        (failure,) = outcome.failures
        assert failure.kind == "oom"
        assert failure.attempts == 2  # retried once, under the same cap
        assert "1024 MB address-space budget" in failure.message
        assert failure.traceback is None
        assert executor.stats.ooms == 2  # both attempts hit the cap
        assert executor.stats.quarantined == 0
        # a clean MemoryError settles in-worker: the pool survives intact
        assert executor.stats.pool_respawns == 0


def test_governed_wave_salvage_is_byte_identical_across_reruns():
    def run_once():
        specs = [
            _burst("wave-ok-1"),
            _storm("wave-budget", budget=ResourceBudget(max_events=33)),
            _burst("wave-ok-2"),
        ]
        with Executor(
            jobs=2,
            backend="process",
            policy="keep-going",
            retries=RetryPolicy(retries=1, base_delay_s=0.01, seed=7),
        ) as executor:
            outcome = executor.map_outcome(specs)
            assert executor.stats.pool_respawns == 0
        payload = {
            "results": [
                result_to_wire(r) if r is not None else None
                for r in outcome.results
            ],
            "failures": [f.to_wire() for f in outcome.failures],
        }
        return json.dumps(payload, sort_keys=True)

    assert run_once() == run_once()


def test_memory_hog_refuses_outside_pool_worker():
    from repro.exec.builders import memory_hog

    with pytest.raises(WorkloadError, match="refuses to allocate"):
        memory_hog("stray", allocate_mb=1)


def test_address_space_cap_restores_limit():
    resource = pytest.importorskip("resource")
    before = resource.getrlimit(resource.RLIMIT_AS)
    with address_space_cap(4096) as applied:
        if applied:
            soft, hard = resource.getrlimit(resource.RLIMIT_AS)
            assert soft != resource.RLIM_INFINITY
            assert hard == before[1]
    assert resource.getrlimit(resource.RLIMIT_AS) == before
    with address_space_cap(None) as applied:
        assert applied is False


# ------------------------------------------------------------- cache quota
def test_cache_quota_gc_evicts_oldest_never_live(tmp_path):
    specs = [_burst(f"gc-{index}", duration_ms=60.0) for index in range(3)]
    results = [execute_spec(spec) for spec in specs]
    probe = ResultCache(tmp_path / "probe")
    probe.put(specs[0], results[0])
    (entry,) = probe.entries()
    entry_size = entry.stat().st_size
    quota = int(entry_size * 2.5)  # room for two entries, never three

    cache = ResultCache(tmp_path / "quota", quota_bytes=quota)
    paths = {}
    for index, (spec, result) in enumerate(zip(specs[:2], results[:2])):
        cache.put(spec, result)
        (paths[index],) = set(cache.entries()) - set(paths.values())
        stamp = (index + 1) * 10**9  # deterministic ages: gc-0 oldest
        os.utime(paths[index], ns=(stamp, stamp))
    # touching gc-0 via get() marks it live: now *gc-1* is the LRU entry
    assert cache.get(specs[0]) is not None
    cache.put(specs[2], results[2])  # forces GC; the fresh store is protected
    assert cache.stats.quota_evictions == 1
    assert cache.get(specs[0]) is not None  # recently used: survived
    assert cache.get(specs[1]) is None  # least recently used: evicted
    assert cache.get(specs[2]) is not None  # just stored: never evicted
    assert sum(path.stat().st_size for path in cache.entries()) <= quota
    assert "quota" in cache.describe()


def test_cache_quota_holds_after_every_put(tmp_path):
    specs = [_burst(f"hold-{index}", duration_ms=60.0) for index in range(4)]
    results = [execute_spec(spec) for spec in specs]
    probe = ResultCache(tmp_path / "probe")
    probe.put(specs[0], results[0])
    quota = int(probe.entries()[0].stat().st_size * 1.5)  # one entry only
    cache = ResultCache(tmp_path / "quota", quota_bytes=quota)
    for spec, result in zip(specs, results):
        cache.put(spec, result)
        total = sum(path.stat().st_size for path in cache.entries())
        assert total <= quota
        assert cache.get(spec) is not None  # the fresh store always survives
    assert cache.stats.quota_evictions == 3


def test_cache_scrub_removes_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    good = _burst("scrub-ok", duration_ms=60.0)
    bad = _burst("scrub-bad", duration_ms=60.0)
    cache.put(good, execute_spec(good))
    survivors = set(cache.entries())
    cache.put(bad, execute_spec(bad))
    (victim,) = set(cache.entries()) - survivors
    victim.write_text("{truncated")
    assert cache.scrub() == 1
    assert cache.stats.scrubbed == 1
    assert cache.get(good) is not None
    assert cache.get(bad) is None


# ------------------------------------------------- admission and shedding
def test_admission_deferral_bounds_in_flight_waves():
    specs = [_burst(f"admit-{index}") for index in range(5)]
    with Executor(
        jobs=2, backend="process", policy="keep-going", admission=2
    ) as executor:
        outcome = executor.map_outcome(specs)
        assert all(result is not None for result in outcome.results)
        # waves of 2: 3 deferred at the first boundary, 1 at the second
        assert executor.stats.admission_deferred == 4
    with pytest.raises(ConfigurationError, match="admission"):
        Executor(jobs=1, admission=0)


def test_sheddable_cells_are_skipped_under_shed_policy():
    from repro.study.core import Study

    def build():
        study = Study("shed-test")
        study.add(_burst("shed-keep"), point="keep")
        study.add(_burst("shed-drop"), point="drop", sheddable=True)
        return study

    with Executor(jobs=1, shed=True) as executor:
        result = build().execute(executor=executor)
        assert executor.stats.shed == 1
    assert result.get(point="keep") is not None
    assert result.get(point="drop") is None
    assert result.holes() == []  # a shed cell is not a failure hole
    assert (("point", "drop"),) in result.shed

    with Executor(jobs=1, shed=False) as executor:
        result = build().execute(executor=executor)
        assert executor.stats.shed == 0
    assert result.get(point="drop") is not None  # no shed policy: it runs
