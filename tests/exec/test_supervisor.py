"""Tests for the supervised execution layer: chaos batches, retries, breaker.

The acceptance scenario lives here: a process-backend batch where one spec
raises, one exceeds its deadline, and one SIGKILLs its worker must still
return results for every healthy spec, in order, plus one structured
:class:`RunFailure` per failed spec — and reruns with the same retry seed
must salvage byte-identical results.
"""

import json

import pytest

from repro.display.device import PIXEL_5
from repro.errors import (
    BatchExecutionError,
    ConfigurationError,
    ExecutionError,
    WorkloadError,
)
from repro.exec.cache import ResultCache
from repro.exec.executor import (
    Executor,
    _close_default_executor,
    get_default_executor,
    set_default_executor,
)
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec
from repro.exec.supervisor import (
    FAILURE_KINDS,
    BatchOutcome,
    CircuitBreaker,
    RetryPolicy,
    RunFailure,
)
from repro.telemetry import runtime as telemetry_runtime

FAST_RETRY = RetryPolicy(retries=1, base_delay_s=0.01, max_delay_s=0.05)


def _chaos(name, mode="ok", timeout_s=None, **params):
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:chaos_driver", name=name, mode=mode, **params
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
        timeout_s=timeout_s,
    )


# --------------------------------------------------------------- acceptance
def test_chaos_batch_salvages_healthy_specs_on_process_backend():
    specs = [
        _chaos("healthy-1"),
        _chaos("raiser", mode="raise"),
        _chaos("healthy-2"),
        _chaos("sleeper", mode="sleep", delay_s=5.0, timeout_s=0.5),
        _chaos("killer", mode="kill"),
        _chaos("healthy-3"),
    ]
    with Executor(
        jobs=2,
        backend="process",
        policy="keep-going",
        retries=FAST_RETRY,
        breaker_threshold=10,
    ) as executor:
        outcome = executor.map_outcome(specs)

        assert [r is not None for r in outcome.results] == [
            True, False, True, False, False, True,
        ]
        assert outcome.salvaged == 3
        kinds = {f.spec_hash: f.kind for f in outcome.failures}
        assert kinds[specs[1].content_hash()] == "crash"
        assert kinds[specs[3].content_hash()] == "timeout"
        assert kinds[specs[4].content_hash()] == "crash"
        # one retry each: transient kinds get max_attempts = 2
        assert all(f.attempts == 2 for f in outcome.failures)
        assert {1, 3, 4} == set(outcome.index_failures)
        assert executor.stats.failures == 3
        assert executor.stats.retries == 3
        assert executor.stats.timeouts >= 1
        assert executor.stats.pool_respawns >= 1
        # the raiser carries its traceback across the pool wire
        raiser = next(
            f for f in outcome.failures
            if f.spec_hash == specs[1].content_hash()
        )
        assert "WorkloadError" in (raiser.traceback or "")


def test_salvaged_results_byte_identical_across_reruns():
    def run_once():
        specs = [
            _chaos("stable"),
            _chaos("rr", mode="raise"),
            _chaos("tt", mode="sleep", delay_s=3.0, timeout_s=0.4),
        ]
        with Executor(
            jobs=2,
            backend="process",
            policy="keep-going",
            retries=RetryPolicy(retries=1, base_delay_s=0.01, seed=7),
        ) as executor:
            outcome = executor.map_outcome(specs)
        payload = {
            "results": [
                result_to_wire(r) if r is not None else None
                for r in outcome.results
            ],
            "failures": [f.to_wire() for f in outcome.failures],
        }
        return json.dumps(payload, sort_keys=True)

    assert run_once() == run_once()


# ------------------------------------------------------- containment pieces
def test_circuit_breaker_degrades_to_inprocess():
    with Executor(
        jobs=2,
        backend="process",
        policy="keep-going",
        retries=0,
        breaker_threshold=2,
    ) as executor:
        for index in range(2):
            outcome = executor.map_outcome([_chaos(f"boom-{index}", mode="kill")])
            assert outcome.failures[0].kind == "crash"
        assert executor.breaker.tripped
        respawns = executor.stats.pool_respawns
        # post-trip work runs in-process: no new pools, results still flow
        outcome = executor.map_outcome([_chaos("post-trip")])
        assert outcome.results[0] is not None
        assert executor.stats.pool_respawns == respawns


def test_breaker_trip_settles_all_suspects_with_retry_budget_left():
    """Every spec in flight at breaker trip yields a failure, never a hole.

    Regression: with ``retries >= 1``, a tripped breaker used to *schedule*
    a retry for each unexonerated suspect and then drop the suspect list —
    the spec produced neither a result nor a RunFailure, and under
    fail-fast the batch returned silently with results missing.
    """
    specs = [
        _chaos("trip-kill-1", mode="kill"),
        _chaos("trip-kill-2", mode="kill"),
        _chaos("trip-healthy"),
    ]
    with Executor(
        jobs=2,
        backend="process",
        policy="keep-going",
        retries=FAST_RETRY,
        breaker_threshold=1,
    ) as executor:
        outcome = executor.map_outcome(specs)
        assert executor.breaker.tripped
    for index in range(len(specs)):
        assert (
            outcome.results[index] is not None or index in outcome.index_failures
        ), f"spec {index} vanished: no result and no failure record"
    assert outcome.results[2] is not None  # healthy sibling still salvaged
    assert all(
        outcome.index_failures[index].kind == "crash" for index in (0, 1)
    )
    assert len(outcome.failures) == 2


def test_timeout_failure_is_not_quarantined():
    """A blown deadline must not outlive the deadline that produced it."""
    slow = _chaos("deadline-retry", mode="sleep", delay_s=0.2, timeout_s=0.05)
    relaxed = _chaos("deadline-retry", mode="sleep", delay_s=0.2, timeout_s=5.0)
    assert slow.content_hash() == relaxed.content_hash()
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        first = executor.map_outcome([slow])
        assert first.failures[0].kind == "timeout"
        assert executor.stats.quarantined == 0
        # Same content, bigger budget: the spec really runs (and succeeds)
        # instead of being served the stale timeout record.
        second = executor.map_outcome([relaxed])
        assert second.results[0] is not None
        # only the relaxed run completed; the timed-out attempt's result
        # was discarded before it could count as executed
        assert executor.stats.runs_executed == 1


def test_process_deadline_excludes_queue_time():
    """A healthy spec queued behind wave siblings keeps its full deadline.

    Six 0.3s runs share two workers, so the last pair waits ~0.6s before a
    slot frees up — longer than the 0.5s deadline. The deadline clock must
    start at dispatch to a worker, so every run finishes with zero timeout
    attempts (and zero retry budget burned).
    """
    with Executor(jobs=2, backend="process", policy="keep-going") as executor:
        executor.map_outcome([_chaos("warm-1"), _chaos("warm-2")])  # spawn workers
        specs = [
            _chaos(f"queued-{index}", mode="sleep", delay_s=0.3, timeout_s=0.5)
            for index in range(6)
        ]
        outcome = executor.map_outcome(specs)
    assert all(result is not None for result in outcome.results)
    assert executor.stats.timeouts == 0
    assert executor.stats.retries == 0


def test_cache_write_failure_degrades_to_uncached(tmp_path):
    """A failing checkpoint write (full disk) never aborts the batch."""

    class DiskFullCache(ResultCache):
        def put(self, spec, result):
            raise OSError(28, "No space left on device")

    with Executor(jobs=1, cache=DiskFullCache(tmp_path)) as executor:
        result = executor.run(_chaos("full-disk"))  # fail-fast would raise
        assert result is not None
        assert executor.stats.cache_write_errors == 1
        assert executor.stats.failures == 0
        assert executor.stats.runs_executed == 1


def test_quarantined_spec_is_not_rerun():
    spec = _chaos("repeat-offender", mode="raise")
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        first = executor.map_outcome([spec])
        executed = executor.stats.runs_executed
        second = executor.map_outcome([spec])
        assert executor.stats.runs_executed == executed  # served from quarantine
        assert second.failures[0] == first.failures[0]
        assert executor.stats.quarantined == 1
        assert executor.clear_quarantine() == 1
        third = executor.map_outcome([spec])
        assert third.failures[0].kind == "crash"  # really ran again


def test_inprocess_backend_enforces_deadline_post_hoc():
    spec = _chaos("slow", mode="sleep", delay_s=0.3, timeout_s=0.05)
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        outcome = executor.map_outcome([spec])
    failure = outcome.failures[0]
    assert failure.kind == "timeout"
    assert failure.attempts == 1
    assert "0.05s deadline" in failure.message


def test_config_failures_are_never_retried():
    spec = _chaos("rejected", mode="config")
    with Executor(jobs=1, policy="keep-going", retries=FAST_RETRY) as executor:
        outcome = executor.map_outcome([spec])
    failure = outcome.failures[0]
    assert failure.kind == "config"
    assert failure.attempts == 1  # deterministic rejection: one attempt only


def test_fail_fast_raises_after_salvaging_siblings(tmp_path):
    cache = ResultCache(tmp_path)
    specs = [_chaos("sib-ok"), _chaos("sib-bad", mode="raise")]
    with Executor(jobs=1, cache=cache, retries=0) as executor:
        with pytest.raises(BatchExecutionError) as excinfo:
            executor.map(specs)
    assert excinfo.value.salvaged == 1
    assert excinfo.value.failures[0].kind == "crash"
    # the healthy sibling was checkpointed before the batch raised
    assert cache.get(specs[0]) is not None


def test_duplicate_failed_specs_share_one_failure_record():
    bad = _chaos("dup-bad", mode="raise")
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        outcome = executor.map_outcome([bad, _chaos("dup-ok"), bad])
    assert len(outcome.failures) == 1
    assert set(outcome.index_failures) == {0, 2}
    assert outcome.results[1] is not None


def test_keep_going_run_returns_none_for_failed_spec():
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        assert executor.run(_chaos("single-bad", mode="raise")) is None


def test_timeout_resume_from_checkpoint(tmp_path):
    """A re-submitted batch only re-runs what the first pass lost."""
    cache = ResultCache(tmp_path)
    specs = [_chaos("ck-a"), _chaos("ck-bad", mode="raise"), _chaos("ck-b")]
    with Executor(jobs=1, cache=cache, policy="keep-going", retries=0) as executor:
        executor.map_outcome(specs)
        assert executor.stats.runs_executed == 2  # successes checkpointed
        assert cache.stats.stores == 2
    with Executor(jobs=1, cache=cache, policy="keep-going", retries=0) as resumed:
        outcome = resumed.map_outcome(specs)
        assert resumed.stats.cache_hits == 2  # only the failed spec re-ran
        assert resumed.stats.failures == 1
    assert outcome.salvaged == 2


# ----------------------------------------------------------- configuration
def test_executor_validates_supervision_configuration():
    with pytest.raises(ConfigurationError, match="timeout_s"):
        Executor(jobs=1, timeout_s=0)
    with pytest.raises(ConfigurationError, match="retries"):
        Executor(jobs=1, retries="two")
    with pytest.raises(ConfigurationError, match="policy"):
        Executor(jobs=1, policy="best-effort")
    with pytest.raises(ConfigurationError, match="threshold"):
        Executor(jobs=1, breaker_threshold=0)


def test_run_spec_rejects_nonpositive_timeout():
    with pytest.raises(ConfigurationError, match="timeout_s"):
        _chaos("bad-timeout", timeout_s=-1.0)


def test_content_hash_ignores_timeout_policy():
    assert (
        _chaos("same").content_hash()
        == _chaos("same", timeout_s=5.0).content_hash()
    )
    wire = _chaos("same", timeout_s=5.0).to_wire()
    assert wire["timeout_s"] == 5.0  # still rides the wire
    assert RunSpec.from_wire(wire).timeout_s == 5.0


@pytest.mark.parametrize(
    "env,value,match",
    [
        ("REPRO_JOBS", "two", "REPRO_JOBS.*'two'"),
        ("REPRO_JOBS", "0", "REPRO_JOBS.*0"),
        ("REPRO_EXEC_BACKEND", "threads", "REPRO_EXEC_BACKEND.*'threads'"),
        ("REPRO_TIMEOUT", "soon", "REPRO_TIMEOUT.*'soon'"),
        ("REPRO_RETRIES", "-1", "REPRO_RETRIES.*-1"),
    ],
)
def test_malformed_environment_fails_at_construction(monkeypatch, env, value, match):
    monkeypatch.setenv(env, value)
    previous = set_default_executor(None)
    try:
        with pytest.raises(ConfigurationError, match=match):
            get_default_executor()
    finally:
        set_default_executor(previous)


def test_environment_supervision_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
    monkeypatch.setenv("REPRO_RETRIES", "3")
    previous = set_default_executor(None)
    try:
        default = get_default_executor()
        assert default.timeout_s == 2.5
        assert default.retry.retries == 3
    finally:
        set_default_executor(previous)


def test_atexit_hook_closes_default_executor():
    previous = set_default_executor(Executor(jobs=2, backend="process"))
    try:
        default = get_default_executor()
        default.map([_chaos("atexit-warm")])
        assert default._pool is not None
        _close_default_executor()
        assert default._pool is None
    finally:
        set_default_executor(previous)


# ----------------------------------------------------------- cache healing
def test_corrupt_cache_entry_evicts_and_counts(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _chaos("heal-me")
    with Executor(jobs=1, cache=cache) as executor:
        executor.run(spec)
        (entry,) = cache.entries()
        entry.write_text("{truncated")
        rerun = executor.run(spec)  # corrupt entry heals transparently
        assert rerun is not None
        assert cache.stats.evictions == 1
        assert executor.stats.cache_evictions == 1
        assert executor.stats.runs_executed == 2
    assert "1 evictions" in cache.describe()


# ------------------------------------------------------ supervisor pieces
def test_retry_policy_delays_are_deterministic_and_bounded():
    policy = RetryPolicy(
        retries=3, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3, jitter=0.5
    )
    spec_hash = "ab" * 32
    delays = [policy.delay_s(spec_hash, attempt) for attempt in (1, 2, 3)]
    assert delays == [policy.delay_s(spec_hash, a) for a in (1, 2, 3)]
    for attempt, delay in zip((1, 2, 3), delays):
        base = min(0.3, 0.1 * 2.0 ** (attempt - 1))
        assert base * 0.5 <= delay <= base * 1.5
    # a different seed decorrelates the jitter stream
    other = RetryPolicy(
        retries=3, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3,
        jitter=0.5, seed=99,
    )
    assert delays != [other.delay_s(spec_hash, a) for a in (1, 2, 3)]


def test_retry_policy_validates_and_classifies():
    with pytest.raises(ConfigurationError):
        RetryPolicy(retries=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=2.0)
    policy = RetryPolicy(retries=2)
    assert policy.max_attempts == 3
    assert policy.retryable("crash") and policy.retryable("timeout")
    assert not policy.retryable("config")
    assert not policy.retryable("cache-corrupt")
    assert not RetryPolicy(retries=0).retryable("crash")


def test_run_failure_wire_round_trip_and_validation():
    failure = RunFailure(
        spec_hash="cd" * 32,
        description="vsync Pixel test",
        kind="timeout",
        attempts=2,
        message="run exceeded its 1s deadline",
    )
    assert RunFailure.from_wire(failure.to_wire()) == failure
    assert "timeout after 2 attempt(s)" in failure.describe()
    with pytest.raises(ConfigurationError, match="kind"):
        RunFailure("x", "d", "melted", 1, "m")
    with pytest.raises(ConfigurationError, match="attempt"):
        RunFailure("x", "d", "crash", 0, "m")
    assert set(FAILURE_KINDS) == {
        "crash", "timeout", "config", "cache-corrupt", "budget", "oom",
    }


def test_circuit_breaker_trips_and_resets():
    breaker = CircuitBreaker(threshold=2)
    assert not breaker.record_failure()
    assert not breaker.tripped
    assert breaker.record_failure()  # True exactly when it trips
    assert breaker.tripped
    assert breaker.trips == 1
    breaker.reset()
    assert not breaker.tripped
    breaker.record_failure()
    breaker.record_success()  # any success clears the streak
    assert breaker.consecutive_failures == 0
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)


def test_batch_outcome_raise_for_failures():
    failure = RunFailure("ee" * 32, "spec", "crash", 1, "boom")
    outcome = BatchOutcome(
        results=["r", None], failures=[failure], index_failures={1: failure}
    )
    assert not outcome.ok
    assert outcome.salvaged == 1
    with pytest.raises(BatchExecutionError):
        outcome.raise_for_failures()
    assert BatchOutcome(results=["r"], failures=[], index_failures={}).ok


def test_chaos_driver_refuses_kill_outside_pool_worker():
    from repro.exec.builders import chaos_driver

    with pytest.raises(WorkloadError, match="refuses kill mode"):
        chaos_driver("stray", mode="kill")
    with pytest.raises(ConfigurationError, match="chaos mode"):
        chaos_driver("stray", mode="explode")


# ---------------------------------------------------------------- telemetry
def test_supervision_counters_reach_telemetry():
    telemetry_runtime.reset()
    telemetry_runtime.set_enabled(True)
    try:
        with Executor(jobs=1, policy="keep-going", retries=FAST_RETRY) as executor:
            executor.map_outcome([_chaos("tele-bad", mode="raise")])
        metrics = telemetry_runtime.collector().exec_metrics
        assert metrics.counter("exec.retries").value == 1
        assert metrics.counter("exec.failures").value == 1
        assert metrics.counter("exec.crashes").value == 2
    finally:
        telemetry_runtime.reset()


def test_keep_going_pairs_dropped_in_compare_scenario(tmp_path):
    """compare_scenario drops failed pairs and raises once nothing is left."""
    from repro.experiments import runner
    from repro.workloads.scenarios import Scenario

    scenario = Scenario(
        name="resilience-pair",
        description="supervisor pair-drop test",
        refresh_hz=60,
        target_vsync_fdps=2.0,
        duration_ms=60.0,
        bursts=1,
    )
    with Executor(jobs=1, policy="keep-going", timeout_s=1e-9, retries=0) as doomed:
        previous = set_default_executor(doomed)
        try:
            with pytest.raises(ExecutionError, match="every repetition pair"):
                runner.compare_scenario(scenario, PIXEL_5, runs=1)
        finally:
            set_default_executor(previous)
