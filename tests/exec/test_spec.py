"""Tests for the declarative RunSpec / DriverSpec layer."""

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.spec import ARCHITECTURES, DriverSpec, RunSpec, canonical_json
from repro.workloads.drivers import AnimationDriver
from repro.workloads.scenarios import Scenario


def _anim_spec(name="spec-test", target=2.0, bursts=1):
    return DriverSpec.of(
        "repro.exec.builders:burst_animation",
        name=name,
        target_fdps=target,
        bursts=bursts,
    )


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [1, 2]}) == canonical_json(
        {"a": [1, 2], "b": 1}
    )


def test_driver_spec_builds_a_driver():
    driver = _anim_spec().build()
    assert isinstance(driver, AnimationDriver)
    assert driver.name == "spec-test"


def test_driver_spec_rejects_bad_builder_path():
    with pytest.raises(ConfigurationError, match="module:function"):
        DriverSpec.of("no_colon_here")


def test_driver_spec_rejects_unserializable_params():
    with pytest.raises(ConfigurationError, match="JSON-serializable"):
        DriverSpec.of("repro.exec.builders:burst_animation", bad=object())


def test_driver_spec_resolve_errors_are_configuration_errors():
    with pytest.raises(ConfigurationError, match="cannot resolve"):
        DriverSpec.of("repro.exec.builders:nope").resolve()
    with pytest.raises(ConfigurationError, match="cannot resolve"):
        DriverSpec.of("repro.not_a_module:x").resolve()
    with pytest.raises(ConfigurationError, match="not callable"):
        DriverSpec.of("repro.exec.cache:DEFAULT_CACHE_DIR").build()


def test_driver_spec_from_scenario_matches_direct_build():
    scenario = Scenario(
        name="spec-scn", description="", refresh_hz=60, target_vsync_fdps=2.0,
        bursts=2,
    )
    spec = DriverSpec.from_scenario(scenario, run=1)
    direct = scenario.build_driver(1)
    built = spec.build()
    assert built.name == direct.name


def test_driver_spec_wire_round_trip():
    spec = _anim_spec(bursts=3)
    assert DriverSpec.from_wire(spec.to_wire()) == spec


def test_run_spec_rejects_unknown_architecture():
    with pytest.raises(ConfigurationError, match="unknown architecture 'gsync'"):
        RunSpec(driver=_anim_spec(), device=PIXEL_5, architecture="gsync")
    assert ARCHITECTURES == ("vsync", "dvsync")


def test_run_spec_rejects_watchdog_on_vsync():
    with pytest.raises(ConfigurationError, match="watchdog"):
        RunSpec(
            driver=_anim_spec(), device=PIXEL_5, architecture="vsync",
            watchdog=True,
        )


def test_run_spec_wire_round_trip_preserves_everything():
    spec = RunSpec(
        driver=_anim_spec(),
        device=MATE_60_PRO,
        architecture="dvsync",
        dvsync=DVSyncConfig(buffer_count=5),
        faults="vsync-jitter(sigma_us=300)",
        fault_seed=7,
        watchdog=True,
        start_time=1000,
        horizon=10_000_000,
    )
    clone = RunSpec.from_wire(spec.to_wire())
    assert clone == spec
    assert clone.content_hash() == spec.content_hash()


def test_content_hash_is_stable_and_field_sensitive():
    base = RunSpec(driver=_anim_spec(), device=PIXEL_5, buffer_count=3)
    same = RunSpec(driver=_anim_spec(), device=PIXEL_5, buffer_count=3)
    assert base.content_hash() == same.content_hash()
    assert len(base.content_hash()) == 64

    for variant in (
        RunSpec(driver=_anim_spec(), device=PIXEL_5, buffer_count=4),
        RunSpec(driver=_anim_spec(), device=MATE_60_PRO, buffer_count=3),
        RunSpec(driver=_anim_spec(target=3.0), device=PIXEL_5, buffer_count=3),
        RunSpec(
            driver=_anim_spec(), device=PIXEL_5, buffer_count=3, fault_seed=1
        ),
        RunSpec(
            driver=_anim_spec(), device=PIXEL_5, buffer_count=3,
            faults="thermal(factor=2.0,start_ms=0,end_ms=100)",
        ),
    ):
        assert variant.content_hash() != base.content_hash()


def test_run_spec_is_frozen_and_hashable():
    spec = RunSpec(driver=_anim_spec(), device=PIXEL_5)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.architecture = "dvsync"
    assert spec in {spec}


def test_describe_mentions_the_key_knobs():
    spec = RunSpec(
        driver=_anim_spec(),
        device=PIXEL_5,
        architecture="dvsync",
        dvsync=DVSyncConfig(buffer_count=4),
        faults="input-loss(drop_prob=0.5)",
    )
    text = spec.describe()
    assert "dvsync" in text
    assert PIXEL_5.name in text
    assert "input-loss" in text
