"""Tests for the public repro.testing helpers."""

from repro.display.device import MATE_60_PRO
from repro.testing import light_params, make_animation, run_dvsync, run_vsync


def test_light_params_never_drop():
    params = light_params()
    assert params.key_prob == 0.0
    assert params.refresh_hz == 60


def test_make_animation_defaults():
    driver = make_animation(light_params())
    assert driver.bursts == 1
    assert driver.duration_ns == 500_000_000


def test_run_vsync_returns_result():
    result = run_vsync(make_animation(light_params(), "helper-vs"))
    assert result.scheduler == "vsync"


def test_run_dvsync_default_config():
    result = run_dvsync(make_animation(light_params(), "helper-dv"))
    assert result.scheduler == "dvsync"
    assert result.buffer_count == 4


def test_run_on_other_device():
    driver = make_animation(light_params(refresh_hz=120), "helper-120")
    result = run_vsync(driver, device=MATE_60_PRO, buffer_count=4)
    assert result.device is MATE_60_PRO
