"""Satellite: Hypothesis round-trip property for the RunResult wire form.

``result_to_wire`` → JSON → ``repro.metrics.coerce.as_result`` must be
lossless for *arbitrary* well-formed results, not just the ones today's
schedulers happen to produce. Hypothesis builds synthetic results across the
full field space (optional stage times, empty and populated event lists,
nested ``extra`` payloads) and asserts the canonical wire text is a fixed
point of the round trip.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display.device import ALL_DEVICES
from repro.exec.serialize import result_from_wire, result_to_wire
from repro.exec.spec import canonical_json
from repro.metrics.coerce import as_result
from repro.pipeline.compositor import DropEvent
from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload
from repro.pipeline.scheduler_base import RunResult
from repro.display.hal import PresentRecord

times = st.integers(min_value=0, max_value=10**12)
opt_times = st.none() | times
durations = st.integers(min_value=0, max_value=10**9)

workloads = st.builds(
    FrameWorkload,
    ui_ns=durations,
    render_ns=durations,
    gpu_ns=durations,
    category=st.sampled_from(sorted(FrameCategory, key=lambda c: c.value)),
)


@st.composite
def frames(draw, frame_id):
    frame = FrameRecord(
        frame_id=frame_id,
        workload=draw(workloads),
        trigger_time=draw(times),
        content_timestamp=draw(times),
        decoupled=draw(st.booleans()),
    )
    frame.ui_start = draw(opt_times)
    frame.ui_end = draw(opt_times)
    frame.render_start = draw(opt_times)
    frame.render_end = draw(opt_times)
    frame.gpu_end = draw(opt_times)
    frame.queued_time = draw(opt_times)
    frame.latch_time = draw(opt_times)
    frame.present_time = draw(opt_times)
    frame.buffer_slot = draw(st.none() | st.integers(min_value=0, max_value=7))
    frame.render_rate_hz = draw(st.none() | st.integers(min_value=1, max_value=120))
    frame.buffer_wait_ns = draw(durations)
    frame.content_value = draw(
        st.none() | st.floats(allow_nan=False, allow_infinity=False, width=32)
    )
    frame.input_predicted = draw(st.booleans())
    return frame


drops = st.builds(
    DropEvent,
    time=times,
    vsync_index=st.integers(min_value=0, max_value=10**6),
    queued_depth=st.integers(min_value=0, max_value=8),
    frames_in_flight=st.integers(min_value=0, max_value=8),
)

presents = st.builds(
    PresentRecord,
    frame_id=st.integers(min_value=0, max_value=10**6),
    present_time=times,
    vsync_index=st.integers(min_value=0, max_value=10**6),
    content_timestamp=times,
    queue_depth_after=st.integers(min_value=0, max_value=8),
    refresh_period=st.integers(min_value=1, max_value=10**8),
)

json_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12)
)
extras = st.dictionaries(
    st.text(min_size=1, max_size=12),
    json_scalars | st.lists(json_scalars, max_size=4),
    max_size=4,
)


@st.composite
def results(draw):
    frame_list = [
        draw(frames(frame_id)) for frame_id in range(draw(st.integers(0, 4)))
    ]
    return RunResult(
        scheduler=draw(st.sampled_from(["vsync", "dvsync"])),
        scenario=draw(st.text(min_size=1, max_size=16)),
        device=draw(st.sampled_from(ALL_DEVICES)),
        buffer_count=draw(st.integers(min_value=2, max_value=8)),
        frames=frame_list,
        drops=draw(st.lists(drops, max_size=4)),
        presents=draw(st.lists(presents, max_size=4)),
        start_time=draw(times),
        end_time=draw(times),
        ui_busy_ns=draw(durations),
        render_busy_ns=draw(durations),
        gpu_busy_ns=draw(durations),
        scheduler_overhead_ns=draw(durations),
        extra=draw(extras),
    )


@given(results())
@settings(max_examples=40, deadline=None)
def test_wire_round_trip_is_a_fixed_point(result):
    """serialize → JSON text → coerce → serialize is byte-identical."""
    wire = result_to_wire(result)
    text = canonical_json(wire)
    rebuilt = as_result(json.loads(text))
    assert isinstance(rebuilt, RunResult)
    assert canonical_json(result_to_wire(rebuilt)) == text


@given(results())
@settings(max_examples=15, deadline=None)
def test_as_result_passthrough_is_identity(result):
    assert as_result(result) is result


def test_as_result_rejects_schemaless_mapping():
    with pytest.raises(TypeError, match="schema"):
        as_result({"frames": []})


def test_as_result_rejects_foreign_types():
    with pytest.raises(TypeError, match="expected a RunResult"):
        as_result(42)


def test_result_from_wire_rejects_unknown_schema():
    wire = {"schema": 99}
    with pytest.raises(ValueError, match="unsupported RunResult schema"):
        result_from_wire(wire)
