"""The seeded spec generator: deterministic, valid-by-construction, covering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fuzz.generator import SpecGenerator, coverage_cell


def _hashes(seed, budget=30):
    return [spec.content_hash() for spec in SpecGenerator(seed).take(budget)]


def test_same_seed_replays_the_same_specs():
    assert _hashes(7) == _hashes(7)


def test_different_seeds_draw_different_specs():
    assert _hashes(0) != _hashes(1)


def test_specs_are_valid_and_campaign_safe():
    """Every sampled spec constructs cleanly (RunSpec validates in
    __post_init__) and carries no determinism hazards: no wall-clock
    deadline, and only engines the batch can execute directly."""
    for spec in SpecGenerator(0).take(60):
        assert spec.timeout_s is None
        assert spec.engine in ("auto", "event")
        assert spec.architecture in ("vsync", "dvsync")
        if spec.watchdog:
            assert spec.architecture == "dvsync"
        if spec.dvsync is not None:
            assert spec.architecture == "dvsync"
            limit = spec.dvsync.resolved_prerender_limit
            assert 1 <= limit <= spec.dvsync.buffer_count - 1


def test_coverage_feedback_spreads_cells():
    generator = SpecGenerator(0)
    specs = list(generator.take(40))
    cells = {coverage_cell(spec) for spec in specs}
    assert generator.cells_visited == len(cells)
    # Coverage bias: distinct cells make up most of the draw.
    assert len(cells) >= len(specs) * 3 // 4


def test_coverage_cell_axes():
    spec = SpecGenerator(3).sample()
    cell = coverage_cell(spec)
    builder_tail, architecture, engine, fault_kinds, device = cell
    assert architecture in ("vsync", "dvsync")
    assert engine in ("auto", "event")
    assert isinstance(fault_kinds, tuple)
    assert device


@pytest.mark.parametrize("bad_seed", [-1, True, 1.5, "0", None])
def test_invalid_seeds_rejected(bad_seed):
    with pytest.raises(ConfigurationError):
        SpecGenerator(bad_seed)


@pytest.mark.parametrize("bad_budget", [0, -3, True, 2.0, "10", None])
def test_invalid_budgets_rejected(bad_budget):
    with pytest.raises(ConfigurationError):
        list(SpecGenerator(0).take(bad_budget))
