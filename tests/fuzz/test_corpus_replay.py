"""Satellite: every corpus entry re-runs through its recorded relation.

The corpus under ``tests/fuzz/corpus/`` is the fuzzer's permanent memory:
shrunk repros of past findings plus hand-crafted edge specs. Each entry is
replayed on every tier-1 pass, so a bug the fuzzer found once (or a boundary
a human thought worth pinning) can never silently regress.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry, save_entry
from repro.fuzz.relations import RELATIONS

from tests.fuzz.conftest import CORPUS_DIR

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    """The repo ships at least three hand-picked edge entries."""
    assert len(ENTRIES) >= 3


def test_corpus_covers_multiple_relations():
    relations = {entry.relation for _, entry in ENTRIES}
    assert len(relations) >= 3
    known = {relation.name for relation in RELATIONS}
    assert relations <= known


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[path.name for path, _ in ENTRIES]
)
def test_corpus_entry_replays_clean(path, entry, execute):
    """The recorded relation must hold on today's tree (no regression)."""
    verdict = replay_entry(entry, execute)
    assert verdict is None, f"{path.name} regressed: {verdict}"


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[path.name for path, _ in ENTRIES]
)
def test_corpus_filenames_are_content_addressed(path, entry):
    """Re-finding the same minimized spec must overwrite, never duplicate."""
    assert path.name == entry.filename()


def test_corpus_entry_wire_round_trip(tmp_path):
    entry = ENTRIES[0][1]
    saved = save_entry(entry, tmp_path)
    assert CorpusEntry.from_wire(json.loads(saved.read_text())) == entry


def test_corrupt_corpus_entry_fails_loudly(tmp_path):
    (tmp_path / "engine-parity-deadbeef0000.json").write_text("{not json")
    with pytest.raises(ConfigurationError, match="corrupt corpus entry"):
        load_corpus(tmp_path)


def test_unsupported_schema_rejected(tmp_path):
    entry = ENTRIES[0][1]
    wire = entry.to_wire()
    wire["schema"] = 99
    (tmp_path / "engine-parity-deadbeef0000.json").write_text(json.dumps(wire))
    with pytest.raises(ConfigurationError, match="schema"):
        load_corpus(tmp_path)


def test_stale_relation_passes_vacuously(execute):
    """Eligibility drift must not break historical repros: a stored spec the
    relation no longer applies to replays as a vacuous pass."""
    entry = ENTRIES[0][1]
    wire = dict(entry.spec_wire)
    wire["faults"] = "vsync-jitter(sigma_us=300)"  # makes engine-parity N/A
    stale = CorpusEntry(relation="engine-parity", spec_wire=wire, detail="stale")
    assert replay_entry(stale, execute) is None
