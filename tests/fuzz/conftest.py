"""Shared fixtures for the fuzz suite.

Most relations exercise the dual-engine contract, and fastpath eligibility
requires the process-wide verification switch *off* (the suite-wide strict
fixture turns it on). Individual tests that probe the process switches flip
them back deliberately.
"""

from __future__ import annotations

import pathlib

import pytest

#: The checked-in regression corpus, resolved relative to this file so the
#: suite replays it regardless of pytest's working directory.
CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


@pytest.fixture(autouse=True)
def _verification_off():
    """Fastpath eligibility requires the process verify switch off."""
    from repro.verify import runtime

    runtime.set_enabled(False)
    yield
    runtime.reset()


@pytest.fixture
def execute():
    """In-process probe execution, normalized exactly like the campaign's."""
    from repro.exec.executor import execute_spec
    from repro.exec.serialize import normalize_result

    return lambda spec: normalize_result(execute_spec(spec))
