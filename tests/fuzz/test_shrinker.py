"""Greedy shrinker: knob accounting, convergence, and report summaries.

The synthetic relations here never execute anything (``probes`` is empty and
``check`` judges the spec algebraically), so shrink convergence is tested in
isolation from the engines.
"""

from __future__ import annotations

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.spec import DriverSpec, RunSpec
from repro.fuzz.shrinker import Shrinker, knob_delta, spec_delta_summary

FAULTS = "vsync-jitter(sigma_us=300)"


def _default_spec() -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="shrink",
            target_fdps=3.0,
        ),
        architecture="vsync",
        device=PIXEL_5,
    )


def _fat_spec() -> RunSpec:
    """Every shrinkable axis off its default, plus two removable params."""
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="shrink",
            target_fdps=3.0,
            duration_ms=250.0,
            bursts=2,
        ),
        architecture="dvsync",
        device=PIXEL_5,
        dvsync=DVSyncConfig(buffer_count=5, prerender_limit=2),
        watchdog=True,
        faults=FAULTS,
        fault_seed=11,
        telemetry=True,
        verify=True,
        start_time=1_000_000,
        horizon=200_000_000,
    )


def _no_execute(spec):
    raise AssertionError("probe-free relation must not execute specs")


class FaultsOnly:
    """Synthetic oracle: violating exactly while fault injection is on."""

    name = "synthetic-faults"
    description = "violates iff spec.faults is set"

    def applies(self, spec):
        return spec.faults is not None

    def probes(self, spec):
        return []

    def check(self, spec, results, execute):
        return f"bad: {spec.content_hash()}"


class OriginalOnly:
    """Synthetic oracle pinned to one exact spec: nothing can be removed."""

    def __init__(self, spec):
        self._hash = spec.content_hash()
        self.name = "synthetic-pinned"
        self.description = "violates only the original spec"

    def applies(self, spec):
        return True

    def probes(self, spec):
        return []

    def check(self, spec, results, execute):
        return "pinned" if spec.content_hash() == self._hash else None


class Crashy(FaultsOnly):
    """Every simplified candidate crashes; only the original judges clean."""

    def __init__(self, spec):
        self._hash = spec.content_hash()

    def check(self, spec, results, execute):
        if spec.content_hash() != self._hash:
            raise RuntimeError("candidate evaluation exploded")
        return "bad"


# --------------------------------------------------------------- knob_delta
def test_knob_delta_is_zero_on_a_default_spec():
    assert knob_delta(_default_spec()) == 0


def test_knob_delta_counts_axes_and_removable_params():
    # 9 non-default axes (faults, watchdog, telemetry, verify, horizon,
    # start_time, fault_seed, dvsync, architecture) + 2 removable params.
    assert knob_delta(_fat_spec()) == 11


def test_required_params_never_count():
    spec = _default_spec()
    assert set(spec.driver.params) == {"name", "target_fdps"}
    assert knob_delta(spec) == 0


# ------------------------------------------------------------------- shrink
def test_shrink_converges_to_the_single_guilty_knob():
    shrinker = Shrinker(FaultsOnly(), _no_execute)
    fat = _fat_spec()
    shrunk, detail, delta = shrinker.shrink(fat, f"bad: {fat.content_hash()}")

    assert delta == 1 == knob_delta(shrunk)
    assert shrunk.faults == FAULTS
    assert shrunk.architecture == "vsync"
    assert shrunk.dvsync is None and not shrunk.watchdog
    assert not shrunk.telemetry and not shrunk.verify
    assert shrunk.start_time == 0 and shrunk.fault_seed == 0
    assert shrunk.horizon is None
    assert set(shrunk.driver.params) == {"name", "target_fdps"}
    # The detail is re-judged on the minimized spec, not the original.
    assert detail == f"bad: {shrunk.content_hash()}"
    assert shrinker.evaluations > 0


def test_shrink_is_deterministic():
    fat = _fat_spec()
    first = Shrinker(FaultsOnly(), _no_execute).shrink(fat, "bad")
    second = Shrinker(FaultsOnly(), _no_execute).shrink(fat, "bad")
    assert first[0].content_hash() == second[0].content_hash()
    assert first[1:] == second[1:]


def test_shrink_keeps_the_spec_when_every_knob_matters():
    fat = _fat_spec()
    shrunk, detail, delta = Shrinker(OriginalOnly(fat), _no_execute).shrink(
        fat, "pinned"
    )
    assert shrunk == fat
    assert detail == "pinned"
    assert delta == knob_delta(fat)


def test_crashing_candidates_are_disqualified():
    fat = _fat_spec()
    shrunk, detail, delta = Shrinker(Crashy(fat), _no_execute).shrink(
        fat, "bad"
    )
    assert shrunk == fat
    assert delta == knob_delta(fat)


def test_violation_respects_the_applies_domain():
    shrinker = Shrinker(FaultsOnly(), _no_execute)
    assert shrinker.violation(_default_spec()) is None  # out of domain
    assert shrinker.violation(_fat_spec()) is not None


# ------------------------------------------------------------------ summary
def test_spec_delta_summary_names_what_survived():
    fat = _fat_spec()
    shrunk, _, _ = Shrinker(FaultsOnly(), _no_execute).shrink(fat, "bad")
    summary = spec_delta_summary(fat, shrunk)
    assert "knob delta 11 -> 1" in summary
    assert "non-default axes: faults" in summary
    assert '"bursts"' in summary and '"duration_ms"' in summary


def test_spec_delta_summary_on_an_unshrunk_spec():
    spec = _default_spec()
    summary = spec_delta_summary(spec, spec)
    assert "knob delta 0 -> 0" in summary
    assert "non-default axes: none" in summary
