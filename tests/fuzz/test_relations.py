"""Unit coverage for the metamorphic-relation catalog."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.spec import DriverSpec, RunSpec
from repro.fuzz.relations import (
    RELATIONS,
    DropsNotWorse,
    EngineParity,
    ObserverNeutrality,
    behavioral_wire,
    relations_by_name,
)


def _spec(**overrides) -> RunSpec:
    base = dict(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="relations",
            target_fdps=3.0,
            duration_ms=150.0,
        ),
        architecture="vsync",
        device=PIXEL_5,
    )
    base.update(overrides)
    return RunSpec(**base)


def _dvsync_spec(**config_overrides) -> RunSpec:
    config = dict(buffer_count=5, prerender_limit=2)
    config.update(config_overrides)
    return _spec(architecture="dvsync", dvsync=DVSyncConfig(**config))


# ------------------------------------------------------------------ catalog
def test_catalog_names_are_unique_and_described():
    names = [relation.name for relation in RELATIONS]
    assert len(names) == len(set(names))
    assert all(relation.description for relation in RELATIONS)


def test_relations_by_name_default_is_full_catalog():
    assert relations_by_name(None) == RELATIONS
    assert relations_by_name([]) == RELATIONS


def test_relations_by_name_keeps_catalog_order_and_dedups():
    selected = relations_by_name(
        ["content-order", "engine-parity", "content-order"]
    )
    assert [relation.name for relation in selected] == [
        "content-order",
        "engine-parity",
    ]


def test_relations_by_name_rejects_unknown():
    with pytest.raises(ConfigurationError, match="unknown relation"):
        relations_by_name(["no-such-oracle"])


# --------------------------------------------------------------- behavioral
def test_behavioral_wire_strips_observers(execute):
    spec = _spec(telemetry=True, verify=True)
    result = execute(spec)
    assert result.telemetry is not None
    assert "invariants" in result.extra
    wire = behavioral_wire(result)
    assert "telemetry" not in wire
    assert "invariants" not in wire["extra"]
    # The source result is untouched (behavioral_wire copies).
    assert "invariants" in result.extra


# ----------------------------------------------------------------- applies
def test_engine_parity_applies_only_to_eligible_specs():
    relation = EngineParity()
    assert relation.applies(_spec())
    assert not relation.applies(_spec(faults="vsync-jitter(sigma_us=300)"))
    assert not relation.applies(_spec(telemetry=True))


def test_observer_neutrality_probe_shape():
    probes = ObserverNeutrality().probes(_spec())
    assert [probe.telemetry for probe in probes] == [False, True, False]
    assert [probe.verify for probe in probes] == [False, False, True]


@pytest.mark.parametrize(
    "spec,expected",
    [
        (_dvsync_spec(), True),
        (_spec(), False),  # baseline architecture: nothing to compare
        (_dvsync_spec(dtv_enabled=False), False),  # ablation forfeits claim
        (_dvsync_spec(ipl_enabled=False), False),
        (_dvsync_spec(enabled=False), False),
        (_dvsync_spec(prerender_limit=1), False),  # no pre-render window
        (_dvsync_spec(buffer_count=3, prerender_limit=2), True),
    ],
    ids=[
        "eligible",
        "vsync",
        "no-dtv",
        "no-ipl",
        "disabled",
        "tiny-window",
        "stock-sized-queue",
    ],
)
def test_drops_not_worse_applies_gating(spec, expected):
    assert DropsNotWorse().applies(spec) is expected


def test_drops_not_worse_rejects_starved_dvsync_queue():
    # Device default is 4 buffers on MATE_60_PRO; a 3-buffer D-VSync queue
    # is starved below the stock baseline and out of the claim's scope.
    spec = _spec(
        architecture="dvsync",
        device=MATE_60_PRO,
        dvsync=DVSyncConfig(buffer_count=3, prerender_limit=2),
    )
    assert not DropsNotWorse().applies(spec)


def test_drops_not_worse_baseline_probe_is_the_vsync_twin():
    spec = _dvsync_spec()
    probes = DropsNotWorse().probes(spec)
    assert probes[0] is spec
    twin = probes[1]
    assert twin.architecture == "vsync"
    assert twin.dvsync is None
    assert twin.driver == spec.driver
    assert twin.device == spec.device


# ------------------------------------------------------------------- checks
def test_checks_pass_on_a_healthy_spec(execute):
    spec = _dvsync_spec()
    for relation in relations_by_name(
        ["seed-determinism", "spelling-neutral", "cache-round-trip", "content-order"]
    ):
        assert relation.applies(spec)
        results = [execute(probe) for probe in relation.probes(spec)]
        assert relation.check(spec, results, execute) is None, relation.name


def test_content_order_flags_a_rewind(execute):
    spec = _spec()
    result = execute(spec)
    assert len(result.presents) >= 2
    reordered = dataclasses.replace(result.presents[0], frame_id=10**6)
    result.presents[0] = reordered
    relation = relations_by_name(["content-order"])[0]
    detail = relation.check(spec, [result], execute)
    assert detail is not None and "after frame" in detail
