"""Satellite: boundary validation for budget/seed, env defaults, and the CLI.

Bad values must die at the boundary — ``ConfigurationError`` from the
library API, exit code 2 from the CLI — before any spec is generated.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.errors import ConfigurationError
from repro.fuzz.campaign import (
    BUDGET_ENV_VAR,
    FINDINGS_SCHEMA_VERSION,
    FuzzCampaign,
    budget_from_env,
    validate_budget,
    validate_seed,
)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.relations import RELATIONS


# ---------------------------------------------------------------- validators
@pytest.mark.parametrize("budget", [1, 2, 100, 10**6])
def test_valid_budgets_pass_through(budget):
    assert validate_budget(budget) == budget


@pytest.mark.parametrize("budget", [0, -1, -100, True, False, 2.0, "10", None])
def test_invalid_budgets_rejected(budget):
    with pytest.raises(ConfigurationError):
        validate_budget(budget)


def test_budget_error_names_its_source():
    with pytest.raises(ConfigurationError, match="--budget"):
        validate_budget(0, source="--budget")


@pytest.mark.parametrize("seed", [0, 1, 10**9])
def test_valid_seeds_pass_through(seed):
    assert validate_seed(seed) == seed


@pytest.mark.parametrize("seed", [-1, True, False, 1.5, "0", None])
def test_invalid_seeds_rejected(seed):
    with pytest.raises(ConfigurationError):
        validate_seed(seed)


def test_campaign_constructor_validates_at_the_boundary():
    with pytest.raises(ConfigurationError):
        FuzzCampaign(budget=0)
    with pytest.raises(ConfigurationError):
        FuzzCampaign(budget=10, seed=-1)
    with pytest.raises(ConfigurationError, match="unknown relation"):
        FuzzCampaign(budget=10, relations=["nope"])


# ----------------------------------------------------------------------- env
def test_budget_from_env_defaults_when_unset(monkeypatch):
    monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
    assert budget_from_env() == 100
    assert budget_from_env(default=7) == 7
    monkeypatch.setenv(BUDGET_ENV_VAR, "")
    assert budget_from_env(default=7) == 7


def test_budget_from_env_parses_integers(monkeypatch):
    monkeypatch.setenv(BUDGET_ENV_VAR, "25")
    assert budget_from_env() == 25


@pytest.mark.parametrize("text", ["abc", "2.5", "0", "-3"])
def test_budget_from_env_rejects_garbage(monkeypatch, text):
    monkeypatch.setenv(BUDGET_ENV_VAR, text)
    with pytest.raises(ConfigurationError, match=BUDGET_ENV_VAR):
        budget_from_env()


# ----------------------------------------------------------------------- CLI
@pytest.mark.parametrize(
    "argv",
    [
        ["--budget", "0"],
        ["--budget", "-5"],
        ["--budget", "abc"],
        ["--seed", "-1"],
    ],
    ids=["budget-zero", "budget-negative", "budget-text", "seed-negative"],
)
def test_cli_rejects_bad_flags_with_exit_2(argv):
    with pytest.raises(SystemExit) as excinfo:
        fuzz_main(argv)
    assert excinfo.value.code == 2


def test_cli_rejects_bad_env_budget_with_exit_2(monkeypatch):
    monkeypatch.setenv(BUDGET_ENV_VAR, "zero")
    with pytest.raises(SystemExit) as excinfo:
        fuzz_main([])
    assert excinfo.value.code == 2


def test_cli_list_relations(capsys):
    assert fuzz_main(["--list-relations"]) == 0
    out = capsys.readouterr().out
    for relation in RELATIONS:
        assert relation.name in out


def test_cli_happy_path_writes_findings_artifact(tmp_path, capsys):
    out = tmp_path / "findings.json"
    code = fuzz_main(
        [
            "--budget",
            "2",
            "--seed",
            "0",
            "--relation",
            "content-order",
            "--corpus",
            "none",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == FINDINGS_SCHEMA_VERSION
    assert report["seed"] == 0
    assert report["budget"] == 2
    assert report["relations"] == ["content-order"]
    assert report["findings"] == []
    stdout = capsys.readouterr().out
    assert "no violations" in stdout
    assert str(out) in stdout


def test_module_entry_point_dispatches_fuzz(capsys):
    assert repro_main(["fuzz", "--list-relations"]) == 0
    assert RELATIONS[0].name in capsys.readouterr().out
