"""Satellite: the fuzzer must catch a deliberately injected engine bug.

Mutation testing for the test subsystem itself: perturb one fastpath frame
time behind the engines' backs and assert the whole detection pipeline
fires — the engine-parity relation flags the divergence, the campaign
records it, the shrinker minimizes it to a near-default spec, and the
emitted corpus entry replays the violation while the mutant is alive (and
is clean again once it is reverted).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_40_PRO
from repro.exec.executor import Executor
from repro.exec.spec import DriverSpec, RunSpec
from repro.fuzz.campaign import FuzzCampaign
from repro.fuzz.corpus import load_corpus, replay_entry


class FixedGenerator:
    """Generator stub feeding the campaign a hand-picked spec list."""

    def __init__(self, specs):
        self._specs = list(specs)
        self.cells_visited = len(self._specs)

    def take(self, budget):
        return self._specs[:budget]


def _eligible_spec() -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="mutation-smoke",
            target_fdps=6.0,
            refresh_hz=90,
        ),
        architecture="dvsync",
        device=MATE_40_PRO,
        dvsync=DVSyncConfig(buffer_count=5, prerender_limit=2),
        horizon=300_000_000,
        fault_seed=3,
    )


@pytest.fixture
def perturbed_fastpath(monkeypatch):
    """Shift the first replayed frame's present time by one nanosecond."""
    from repro.fastpath import replay as replay_module

    pristine = replay_module.replay_spec

    def mutant(spec, driver, compiled):
        result = pristine(spec, driver, compiled)
        for frame in result.frames:
            if frame.present_time is not None:
                frame.present_time += 1
                break
        return result

    monkeypatch.setattr(replay_module, "replay_spec", mutant)
    return pristine


def test_mutation_is_detected_shrunk_and_replayable(
    perturbed_fastpath, execute, tmp_path, monkeypatch
):
    executor = Executor(jobs=1, cache=False)
    try:
        report = FuzzCampaign(
            budget=1,
            seed=0,
            relations=["engine-parity"],
            executor=executor,
            corpus_dir=tmp_path,
            generator=FixedGenerator([_eligible_spec()]),
        ).run()
    finally:
        executor.close()

    assert not report.ok
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.relation == "engine-parity"
    assert finding.kind == "violation"
    assert "present_time" in finding.detail or "first difference" in finding.detail

    # The shrinker converged to a near-default spec: the mutant corrupts
    # every eligible replay, so nothing about the original knobs survives.
    assert finding.knob_delta is not None and finding.knob_delta <= 3
    assert finding.shrunk_wire is not None

    # The emitted corpus entry replays the violation while the mutant lives.
    entries = load_corpus(tmp_path)
    assert len(entries) == 1
    _, entry = entries[0]
    assert entry.relation == "engine-parity"
    assert replay_entry(entry, execute) is not None

    # Reverting the mutant makes the same entry replay clean again.
    from repro.fastpath import replay as replay_module

    monkeypatch.setattr(replay_module, "replay_spec", perturbed_fastpath)
    assert replay_entry(entry, execute) is None


def test_unperturbed_campaign_is_clean_on_the_same_spec(execute):
    executor = Executor(jobs=1, cache=False)
    try:
        report = FuzzCampaign(
            budget=1,
            seed=0,
            relations=["engine-parity"],
            executor=executor,
            corpus_dir=None,
            generator=FixedGenerator([_eligible_spec()]),
        ).run()
    finally:
        executor.close()
    assert report.ok, [finding.describe() for finding in report.findings]
