"""Satellite: one boundary test per fastpath ineligibility rule.

For every rule in :func:`repro.fastpath.engine.spec_ineligibility` the
contract is three-sided: the rule names its reason, ``engine="auto"`` falls
back to the event engine (byte-identical results), and ``engine="fastpath"``
refuses with a :class:`ConfigurationError` carrying that same reason.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.executor import execute_spec
from repro.exec.spec import DriverSpec, RunSpec, canonical_json
from repro.fastpath.engine import spec_ineligibility
from repro.fuzz.relations import behavioral_wire


def _spec(**overrides) -> RunSpec:
    base = dict(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="eligibility",
            target_fdps=3.0,
            duration_ms=200.0,
        ),
        architecture="vsync",
        device=PIXEL_5,
    )
    base.update(overrides)
    return RunSpec(**base)


#: (case id, spec overrides, process switch to flip, reason fragment,
#:  whether the event fallback itself can run the spec)
RULES = [
    (
        "faults",
        {"faults": "vsync-jitter(sigma_us=300)"},
        None,
        "fault injection",
        True,
    ),
    (
        "watchdog",
        {
            "architecture": "dvsync",
            "dvsync": DVSyncConfig(buffer_count=4),
            "watchdog": True,
        },
        None,
        "degradation watchdog",
        True,
    ),
    ("spec-telemetry", {"telemetry": True}, None, "telemetry session", True),
    ("spec-verify", {"verify": True}, None, "invariant checker", True),
    (
        "process-telemetry",
        {},
        "telemetry",
        "process-wide telemetry switch",
        True,
    ),
    (
        "process-verify",
        {},
        "verify",
        "process-wide verification switch",
        True,
    ),
    (
        "dvsync-disabled",
        {
            "architecture": "dvsync",
            "dvsync": DVSyncConfig(buffer_count=4, enabled=False),
        },
        None,
        "enabled=False",
        True,
    ),
    (
        "negative-start-time",
        {"start_time": -1},
        None,
        "negative start_time",
        False,
    ),
]


@pytest.fixture
def flip_switch():
    """Flip one process-wide switch for the duration of a test."""
    torn_down = []

    def flip(which):
        if which == "telemetry":
            from repro.telemetry import runtime
        elif which == "verify":
            from repro.verify import runtime
        else:
            return
        runtime.set_enabled(True)
        torn_down.append(runtime)

    yield flip
    for runtime in torn_down:
        runtime.reset()


@pytest.mark.parametrize(
    "overrides,switch,fragment,fallback_runs",
    [rule[1:] for rule in RULES],
    ids=[rule[0] for rule in RULES],
)
def test_rule_names_reason_and_gates_both_engines(
    overrides, switch, fragment, fallback_runs, flip_switch
):
    spec = _spec(**overrides)
    flip_switch(switch)

    reason = spec_ineligibility(spec)
    assert reason is not None and fragment in reason

    with pytest.raises(ConfigurationError) as excinfo:
        execute_spec(dataclasses.replace(spec, engine="fastpath"))
    assert "engine='fastpath' cannot replay this spec" in str(excinfo.value)
    assert fragment in str(excinfo.value)

    if fallback_runs:
        # Behavioral wire: telemetry sessions carry wall-clock timings, so
        # the comparison strips observers exactly like the parity oracle.
        auto = canonical_json(
            behavioral_wire(execute_spec(dataclasses.replace(spec, engine="auto")))
        )
        event = canonical_json(
            behavioral_wire(execute_spec(dataclasses.replace(spec, engine="event")))
        )
        assert auto == event


def test_eligible_spec_has_no_reason():
    assert spec_ineligibility(_spec()) is None


def test_non_trace_pure_driver_falls_back():
    """Driver purity is checked past spec_ineligibility: a builder with no
    replay profile still refuses forced fastpath but passes the spec gate."""
    spec = _spec(
        driver=DriverSpec.of(
            "repro.exec.builders:scenario_driver",
            name="no-profile",
            description="interactive gesture (no replay profile)",
            refresh_hz=60,
            target_vsync_fdps=4.0,
            interactive=True,
        )
    )
    assert spec_ineligibility(spec) is None
    with pytest.raises(ConfigurationError, match="not trace-pure"):
        execute_spec(dataclasses.replace(spec, engine="fastpath"))
