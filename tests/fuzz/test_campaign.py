"""Campaign mechanics: determinism, dedup accounting, failure findings."""

from __future__ import annotations

import pytest

from repro.display.device import PIXEL_5
from repro.exec.executor import Executor
from repro.exec.spec import DriverSpec, RunSpec, canonical_json
from repro.fuzz.campaign import FuzzCampaign


class FixedGenerator:
    def __init__(self, specs):
        self._specs = list(specs)
        self.cells_visited = len(self._specs)

    def take(self, budget):
        return self._specs[:budget]


@pytest.fixture
def executor():
    executor = Executor(jobs=1, cache=False)
    yield executor
    executor.close()


def _spec(**driver_overrides) -> RunSpec:
    params = dict(name="campaign", target_fdps=4.0, duration_ms=150.0)
    params.update(driver_overrides)
    return RunSpec(
        driver=DriverSpec.of("repro.exec.builders:burst_animation", **params),
        architecture="vsync",
        device=PIXEL_5,
    )


def _report_bytes(budget, seed):
    executor = Executor(jobs=1, cache=False)
    try:
        report = FuzzCampaign(budget=budget, seed=seed, executor=executor).run()
    finally:
        executor.close()
    return canonical_json(report.to_wire())


def test_report_wire_bytes_are_deterministic():
    assert _report_bytes(3, 0) == _report_bytes(3, 0)


def test_identical_probes_deduplicate_in_the_batch(executor):
    spec = _spec()
    report = FuzzCampaign(
        budget=2,
        seed=0,
        relations=["content-order"],
        executor=executor,
        corpus_dir=None,
        generator=FixedGenerator([spec, spec]),
    ).run()
    assert report.ok
    assert report.specs_generated == 2
    assert report.probes_submitted == 2
    assert report.probes_unique == 1
    assert report.pairs_checked == 2


def test_probe_crash_becomes_an_execution_finding(executor):
    crash = RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:chaos_driver", name="boom", mode="raise"
        ),
        architecture="vsync",
        device=PIXEL_5,
    )
    report = FuzzCampaign(
        budget=1,
        seed=0,
        relations=["content-order"],
        executor=executor,
        corpus_dir=None,
        generator=FixedGenerator([crash]),
    ).run()
    assert not report.ok
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.relation == "execution"
    assert "chaos driver" in finding.detail
    assert finding.shrunk_wire is None  # harness failures are not shrunk
    # The pair whose probe died is never judged.
    assert report.pairs_checked == 0


def test_crashing_check_becomes_an_evaluation_finding(executor):
    class BrokenOracle:
        name = "broken"
        description = "check() always crashes"

        def applies(self, spec):
            return True

        def probes(self, spec):
            return [spec]

        def check(self, spec, results, execute):
            raise RuntimeError("oracle exploded")

    campaign = FuzzCampaign(
        budget=1,
        seed=0,
        relations=["content-order"],
        executor=executor,
        corpus_dir=None,
        generator=FixedGenerator([_spec()]),
    )
    campaign.relations = [BrokenOracle()]
    report = campaign.run()
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.kind == "evaluation-crash"
    assert "RuntimeError: oracle exploded" in finding.detail


def test_render_summarizes_the_campaign(executor):
    report = FuzzCampaign(
        budget=1,
        seed=0,
        relations=["content-order"],
        executor=executor,
        corpus_dir=None,
        generator=FixedGenerator([_spec()]),
    ).run()
    text = report.render()
    assert "seed=0 budget=1" in text
    assert "no violations" in text
