"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BufferQueueError,
    ConfigurationError,
    FaultContainmentError,
    InjectedFaultError,
    PipelineError,
    PredictionError,
    ReproError,
    SimulationError,
    WorkloadError,
)


@pytest.mark.parametrize(
    "exc",
    [
        SimulationError,
        BufferQueueError,
        PipelineError,
        ConfigurationError,
        WorkloadError,
        PredictionError,
        InjectedFaultError,
        FaultContainmentError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise BufferQueueError("slot stuck")


def test_library_raises_typed_errors_not_bare_exceptions():
    from repro.graphics.bufferqueue import BufferQueue

    with pytest.raises(BufferQueueError):
        BufferQueue(capacity=0, buffer_bytes=1)
