"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BatchExecutionError,
    BufferQueueError,
    ConfigurationError,
    DeadlineExceededError,
    ExecutionError,
    FaultContainmentError,
    InjectedFaultError,
    PipelineError,
    PredictionError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkloadError,
)


@pytest.mark.parametrize(
    "exc",
    [
        SimulationError,
        BufferQueueError,
        PipelineError,
        ConfigurationError,
        WorkloadError,
        PredictionError,
        InjectedFaultError,
        FaultContainmentError,
        ExecutionError,
        WorkerCrashError,
        DeadlineExceededError,
        BatchExecutionError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_execution_errors_derive_from_execution_error():
    for exc in (WorkerCrashError, DeadlineExceededError, BatchExecutionError):
        assert issubclass(exc, ExecutionError)


def test_batch_execution_error_previews_failures():
    from repro.exec.supervisor import RunFailure

    failures = [
        RunFailure(
            spec_hash=f"{i:064x}",
            description=f"spec {i}",
            kind="crash",
            attempts=2,
            message="boom",
        )
        for i in range(5)
    ]
    error = BatchExecutionError(failures, salvaged=3)
    assert error.failures == failures
    assert error.salvaged == 3
    assert "5 spec(s) failed" in str(error)
    assert "3 sibling result(s) salvaged" in str(error)
    assert "... 2 more" in str(error)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise BufferQueueError("slot stuck")


def test_library_raises_typed_errors_not_bare_exceptions():
    from repro.graphics.bufferqueue import BufferQueue

    with pytest.raises(BufferQueueError):
        BufferQueue(capacity=0, buffer_bytes=1)
