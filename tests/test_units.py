"""Tests for time-unit conversions."""

import pytest

from repro.units import (
    NSEC_PER_MSEC,
    NSEC_PER_SEC,
    hz_to_period,
    ms,
    ns,
    period_to_hz,
    seconds,
    to_ms,
    to_seconds,
    to_us,
    us,
)


def test_ms_converts_to_nanoseconds():
    assert ms(1) == NSEC_PER_MSEC
    assert ms(16.7) == 16_700_000


def test_us_converts_to_nanoseconds():
    assert us(102.6) == 102_600


def test_ns_rounds_to_integer():
    assert ns(1.4) == 1
    assert ns(1.6) == 2


def test_seconds_converts():
    assert seconds(2) == 2 * NSEC_PER_SEC


def test_roundtrip_ms():
    assert to_ms(ms(8.3)) == pytest.approx(8.3, abs=1e-6)


def test_roundtrip_us():
    assert to_us(us(151.6)) == pytest.approx(151.6, abs=1e-3)


def test_roundtrip_seconds():
    assert to_seconds(seconds(1.5)) == pytest.approx(1.5)


def test_hz_to_period_60():
    assert hz_to_period(60) == 16_666_667


def test_hz_to_period_120():
    assert hz_to_period(120) == 8_333_333


def test_hz_to_period_90():
    assert hz_to_period(90) == 11_111_111


def test_period_to_hz_inverts():
    assert period_to_hz(hz_to_period(120)) == pytest.approx(120, rel=1e-6)


def test_hz_to_period_rejects_nonpositive():
    with pytest.raises(ValueError):
        hz_to_period(0)
    with pytest.raises(ValueError):
        hz_to_period(-60)


def test_period_to_hz_rejects_nonpositive():
    with pytest.raises(ValueError):
        period_to_hz(0)
