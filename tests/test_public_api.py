"""Tests that the public API surface stays importable and coherent."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.display",
    "repro.graphics",
    "repro.pipeline",
    "repro.vsync",
    "repro.core",
    "repro.workloads",
    "repro.metrics",
    "repro.apps",
    "repro.trace",
    "repro.exec",
    "repro.verify",
    "repro.extensions",
    "repro.experiments",
    "repro.testing",
    "repro.units",
    "repro.errors",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} must carry a module docstring"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module_name",
    ["repro.core", "repro.display", "repro.workloads", "repro.metrics", "repro.trace"],
)
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{module_name}.{name}"


def test_version_present():
    assert repro.__version__ == "1.0.0"


def test_public_functions_have_docstrings():
    from repro.core.dvsync import DVSyncScheduler
    from repro.vsync.scheduler import VSyncScheduler

    for cls in (DVSyncScheduler, VSyncScheduler):
        for attr_name in dir(cls):
            if attr_name.startswith("_"):
                continue
            attr = getattr(cls, attr_name)
            if callable(attr):
                assert attr.__doc__, f"{cls.__name__}.{attr_name} lacks a docstring"
