"""Tests for synchronization fences."""

import pytest

from repro.errors import PipelineError
from repro.graphics.fence import Fence


def test_starts_unsignalled():
    fence = Fence()
    assert not fence.signalled


def test_signal_records_time():
    fence = Fence()
    fence.signal(123)
    assert fence.signalled
    assert fence.signal_time == 123


def test_signal_twice_raises():
    fence = Fence()
    fence.signal(1)
    with pytest.raises(PipelineError):
        fence.signal(2)


def test_signal_time_before_signal_raises():
    with pytest.raises(PipelineError):
        Fence().signal_time


def test_waiters_run_on_signal():
    fence = Fence()
    seen = []
    fence.on_signal(lambda t: seen.append(t))
    fence.on_signal(lambda t: seen.append(t * 2))
    fence.signal(10)
    assert seen == [10, 20]


def test_waiter_after_signal_runs_immediately():
    fence = Fence()
    fence.signal(5)
    seen = []
    fence.on_signal(lambda t: seen.append(t))
    assert seen == [5]
