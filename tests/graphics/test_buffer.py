"""Tests for the frame-buffer state machine."""

import pytest

from repro.errors import BufferQueueError
from repro.graphics.buffer import BufferState, FrameBuffer


def make_buffer():
    return FrameBuffer(slot=0, size_bytes=10 * 1024 * 1024)


def test_initial_state_free():
    assert make_buffer().state is BufferState.FREE


def test_full_lifecycle():
    buffer = make_buffer()
    buffer.mark_dequeued()
    assert buffer.state is BufferState.DEQUEUED
    buffer.mark_queued(frame_id=1, content_timestamp=100, render_rate_hz=60, now=50)
    assert buffer.state is BufferState.QUEUED
    assert buffer.frame_id == 1
    assert buffer.queued_at == 50
    buffer.mark_acquired()
    assert buffer.state is BufferState.ACQUIRED
    buffer.mark_free()
    assert buffer.state is BufferState.FREE
    assert buffer.frame_id is None


def test_queue_without_dequeue_raises():
    buffer = make_buffer()
    with pytest.raises(BufferQueueError):
        buffer.mark_queued(frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)


def test_double_dequeue_raises():
    buffer = make_buffer()
    buffer.mark_dequeued()
    with pytest.raises(BufferQueueError):
        buffer.mark_dequeued()


def test_acquire_from_free_raises():
    with pytest.raises(BufferQueueError):
        make_buffer().mark_acquired()


def test_free_from_queued_raises():
    buffer = make_buffer()
    buffer.mark_dequeued()
    buffer.mark_queued(frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)
    with pytest.raises(BufferQueueError):
        buffer.mark_free()


def test_cancel_path_dequeued_to_free():
    buffer = make_buffer()
    buffer.mark_dequeued()
    buffer.mark_free()
    assert buffer.state is BufferState.FREE


def test_metadata_cleared_on_dequeue():
    buffer = make_buffer()
    buffer.mark_dequeued()
    buffer.mark_queued(frame_id=9, content_timestamp=5, render_rate_hz=120, now=5)
    buffer.mark_acquired()
    buffer.mark_free()
    buffer.mark_dequeued()
    assert buffer.frame_id is None
    assert buffer.render_rate_hz is None
