"""Tests for the BufferQueue producer-consumer contract."""

import pytest

from repro.errors import BufferQueueError
from repro.graphics.buffer import BufferState
from repro.graphics.bufferqueue import BufferQueue


def make_queue(capacity=3):
    return BufferQueue(capacity=capacity, buffer_bytes=1024)


def test_capacity_minimum():
    with pytest.raises(BufferQueueError):
        make_queue(capacity=1)


def test_buffer_bytes_positive():
    with pytest.raises(BufferQueueError):
        BufferQueue(capacity=3, buffer_bytes=0)


def test_dequeue_until_empty():
    queue = make_queue(capacity=3)
    assert queue.try_dequeue() is not None
    assert queue.try_dequeue() is not None
    assert queue.try_dequeue() is not None
    assert queue.try_dequeue() is None
    assert queue.free_count == 0
    assert queue.dequeued_count == 3


def test_queue_and_acquire_fifo():
    queue = make_queue(capacity=3)
    first = queue.try_dequeue()
    second = queue.try_dequeue()
    queue.queue(first, frame_id=1, content_timestamp=10, render_rate_hz=60, now=10)
    queue.queue(second, frame_id=2, content_timestamp=20, render_rate_hz=60, now=20)
    assert queue.queued_depth == 2
    assert queue.acquire().frame_id == 1
    assert queue.acquire().frame_id == 2


def test_acquire_releases_previous_front():
    queue = make_queue(capacity=2)
    a = queue.try_dequeue()
    queue.queue(a, frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)
    front = queue.acquire()
    assert queue.front is front
    b = queue.try_dequeue()
    queue.queue(b, frame_id=2, content_timestamp=1, render_rate_hz=60, now=1)
    queue.acquire()
    assert a.state is BufferState.FREE
    assert queue.front is b


def test_acquire_empty_raises():
    with pytest.raises(BufferQueueError):
        make_queue().acquire()


def test_foreign_buffer_rejected():
    queue_a = make_queue()
    queue_b = make_queue()
    stranger = queue_b.try_dequeue()
    with pytest.raises(BufferQueueError):
        queue_a.queue(stranger, frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)


def test_cancel_returns_slot():
    queue = make_queue(capacity=2)
    buffer = queue.try_dequeue()
    assert queue.free_count == 1
    queue.cancel(buffer)
    assert queue.free_count == 2


def test_cancel_queued_buffer_raises():
    queue = make_queue()
    buffer = queue.try_dequeue()
    queue.queue(buffer, frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)
    with pytest.raises(BufferQueueError):
        queue.cancel(buffer)


def test_on_buffer_queued_hook():
    queue = make_queue()
    seen = []
    queue.on_buffer_queued.append(lambda b: seen.append(b.frame_id))
    buffer = queue.try_dequeue()
    queue.queue(buffer, frame_id=42, content_timestamp=0, render_rate_hz=60, now=0)
    assert seen == [42]


def test_on_slot_freed_hook_fires_on_acquire_release():
    queue = make_queue(capacity=2)
    freed = []
    queue.on_slot_freed.append(lambda: freed.append(True))
    a = queue.try_dequeue()
    queue.queue(a, frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)
    queue.acquire()  # no previous front: nothing freed
    assert freed == []
    b = queue.try_dequeue()
    queue.queue(b, frame_id=2, content_timestamp=1, render_rate_hz=60, now=1)
    queue.acquire()  # releases a
    assert freed == [True]


def test_on_slot_freed_hook_fires_on_cancel():
    queue = make_queue()
    freed = []
    queue.on_slot_freed.append(lambda: freed.append(True))
    queue.cancel(queue.try_dequeue())
    assert freed == [True]


def test_stats_track_depth_and_totals():
    queue = make_queue(capacity=4)
    for frame_id in range(3):
        buffer = queue.try_dequeue()
        queue.queue(buffer, frame_id=frame_id, content_timestamp=0, render_rate_hz=60, now=0)
    assert queue.max_queued_depth == 3
    assert queue.total_queued == 3
    queue.acquire()
    assert queue.total_acquired == 1


def test_memory_accounting():
    queue = BufferQueue(capacity=5, buffer_bytes=10 * 1024 * 1024)
    assert queue.memory_bytes == 5 * 10 * 1024 * 1024


def test_peek_does_not_remove():
    queue = make_queue()
    buffer = queue.try_dequeue()
    queue.queue(buffer, frame_id=1, content_timestamp=0, render_rate_hz=60, now=0)
    assert queue.peek_queued() is buffer
    assert queue.queued_depth == 1
