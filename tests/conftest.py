"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.sim.engine import Simulator
from repro.workloads.distributions import (
    SCATTERED,
    FrameTimeParams,
    params_for_target_fdps,
)


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Keep the process-wide telemetry switch/collector from leaking."""
    yield
    from repro.telemetry import runtime

    runtime.reset()


@pytest.fixture(autouse=True)
def _strict_verification():
    """Run the whole suite under the strict invariant checker.

    Every scheduler any test constructs gets a checker via the process-wide
    switch, and a violated invariant fails the test loudly
    (:class:`~repro.errors.InvariantViolationError`) instead of shipping a
    silently-wrong trace. Tests that intentionally break invariants pass
    ``verify=False`` (or a relaxed checker) explicitly.
    """
    from repro.verify import runtime

    runtime.set_enabled(True, strict=True)
    yield
    runtime.reset()


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def light_params() -> FrameTimeParams:
    """A 60 Hz workload with no key frames (never drops)."""
    return FrameTimeParams(refresh_hz=60, key_prob=0.0)


@pytest.fixture
def droppy_params() -> FrameTimeParams:
    """A 60 Hz workload calibrated to drop a few frames per second."""
    return params_for_target_fdps(3.0, 60, profile=SCATTERED)


@pytest.fixture
def quick_dvsync_config() -> DVSyncConfig:
    return DVSyncConfig(buffer_count=4)


@pytest.fixture
def pixel5():
    return PIXEL_5
