"""Tests for event handles."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_handle_reports_time():
    sim = Simulator()
    handle = sim.schedule_at(42, lambda: None)
    assert handle.time == 42


def test_handle_pending_until_fired():
    sim = Simulator()
    handle = sim.schedule_at(10, lambda: None)
    assert handle.pending
    sim.run()
    assert handle.fired
    assert not handle.pending


def test_cancel_twice_raises():
    sim = Simulator()
    handle = sim.schedule_at(10, lambda: None)
    handle.cancel()
    with pytest.raises(SimulationError):
        handle.cancel()


def test_cancel_after_fire_raises():
    sim = Simulator()
    handle = sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        handle.cancel()


def test_cancelled_state_visible():
    sim = Simulator()
    handle = sim.schedule_at(10, lambda: None)
    handle.cancel()
    assert handle.cancelled
    assert not handle.fired
