"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=500).now == 500


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(30, lambda: fired.append(30))
    sim.schedule_at(10, lambda: fired.append(10))
    sim.schedule_at(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10, 20, 30]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in range(5):
        sim.schedule_at(100, lambda l=label: fired.append(l))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_schedule_relative_delay():
    sim = Simulator()
    sim.schedule_at(50, lambda: sim.schedule(25, lambda: None))
    sim.run()
    assert sim.now == 75


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule_at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_call_soon_fires_after_pending_same_time_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: fired.append("a"))

    def at_ten():
        sim.call_soon(lambda: fired.append("soon"))
        fired.append("b")

    sim.schedule_at(10, at_ten)
    # "a" fires, then at_ten appends "b" and queues "soon" at t=10.
    sim.run()
    assert fired == ["a", "b", "soon"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: fired.append(10))
    sim.schedule_at(100, lambda: fired.append(100))
    sim.run(until=50)
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(50, lambda: fired.append(50))
    sim.run(until=50)
    assert fired == [50]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(10, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []


def test_max_events_guard_raises():
    sim = Simulator()

    def loop():
        sim.schedule(1, loop)

    sim.schedule(1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_reentrant_run_raises():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule_at(5, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: fired.append(1))
    sim.schedule_at(20, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_reentrant_step_raises():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule_at(5, reenter)
    sim.schedule_at(6, lambda: None)
    assert sim.step() is True
    assert len(errors) == 1
    # The guard is released afterwards: stepping from outside still works.
    assert sim.step() is True
    assert sim.step() is False


def test_step_inside_run_raises():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule_at(5, reenter)
    sim.run()
    assert len(errors) == 1


def test_exception_handler_contains_marked_exceptions():
    sim = Simulator()
    contained = []
    sim.exception_handler = lambda now, exc: (
        contained.append((now, exc)) or isinstance(exc, KeyError)
    )

    def raise_key_error():
        raise KeyError("contained")

    sim.schedule_at(10, raise_key_error)
    sim.schedule_at(20, lambda: None)
    sim.run()
    assert len(contained) == 1
    assert sim.now == 20  # the run continued past the contained exception


def test_exception_handler_can_decline():
    sim = Simulator()
    sim.exception_handler = lambda now, exc: False

    def raise_value_error():
        raise ValueError("not contained")

    sim.schedule_at(10, raise_value_error)
    with pytest.raises(ValueError):
        sim.run()


def test_no_exception_handler_propagates():
    sim = Simulator()

    def boom():
        raise RuntimeError("boom")

    sim.schedule_at(10, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    # The guard is released even on an escaping exception.
    sim.schedule_at(20, lambda: None)
    sim.run()
    assert sim.now == 20


def test_events_processed_counter():
    sim = Simulator()
    for t in (1, 2, 3):
        sim.schedule_at(t, lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_drain_cancelled_removes_tombstones():
    sim = Simulator()
    handles = [sim.schedule_at(10 + i, lambda: None) for i in range(5)]
    for handle in handles[:3]:
        handle.cancel()
    removed = sim.drain_cancelled()
    assert removed == 3
    assert sim.pending_events == 2


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, lambda: sim.schedule_at(15, lambda: fired.append(15)))
    sim.run()
    assert fired == [15]
