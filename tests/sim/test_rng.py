"""Tests for seeded randomness."""

from repro.sim.rng import SeededRng, seed_from_name


def test_seed_from_name_is_stable():
    assert seed_from_name("scrl wechat") == seed_from_name("scrl wechat")


def test_seed_from_name_differs_by_name():
    assert seed_from_name("a") != seed_from_name("b")


def test_seed_salt_changes_seed():
    assert seed_from_name("a", "x") != seed_from_name("a", "y")


def test_same_seed_same_sequence():
    a = SeededRng(123)
    b = SeededRng(123)
    assert [a.uniform(0, 1) for _ in range(10)] == [b.uniform(0, 1) for _ in range(10)]


def test_for_scenario_reproducible():
    a = SeededRng.for_scenario("Walmart")
    b = SeededRng.for_scenario("Walmart")
    assert a.integer(0, 1000) == b.integer(0, 1000)


def test_spawn_children_independent_by_label():
    parent = SeededRng(7)
    child_a = parent.spawn("a")
    child_b = parent.spawn("b")
    assert child_a.uniform(0, 1) != child_b.uniform(0, 1)


def test_spawn_same_label_same_stream():
    assert SeededRng(7).spawn("x").uniform(0, 1) == SeededRng(7).spawn("x").uniform(0, 1)


def test_chance_extremes():
    rng = SeededRng(1)
    assert not any(rng.chance(0.0) for _ in range(50))
    assert all(rng.chance(1.0) for _ in range(50))


def test_integer_bounds_inclusive():
    rng = SeededRng(2)
    draws = {rng.integer(1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}


def test_choice_returns_member():
    rng = SeededRng(3)
    options = ["a", "b", "c"]
    assert all(rng.choice(options) in options for _ in range(20))


def test_exponential_positive():
    rng = SeededRng(4)
    assert all(rng.exponential(1.5) >= 0 for _ in range(100))


def test_lognormal_array_shape():
    rng = SeededRng(5)
    arr = rng.lognormal_array(0.0, 0.3, 64)
    assert arr.shape == (64,)
    assert (arr > 0).all()


def test_random_array_in_unit_interval():
    rng = SeededRng(6)
    arr = rng.random_array(128)
    assert ((arr >= 0) & (arr < 1)).all()
