"""Tests for the LTPO variable-refresh-rate controller."""

import pytest

from repro.display.ltpo import DEFAULT_TIERS, LTPOController, RateTier
from repro.display.vsync import HWVsyncSource
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.units import hz_to_period


def make_controller(max_hz=None):
    sim = Simulator()
    source = HWVsyncSource(sim, hz_to_period(120))
    return sim, source, LTPOController(source, max_hz=max_hz)


def test_starts_at_highest_tier():
    _, _, ltpo = make_controller()
    assert ltpo.current_hz == 120


def test_select_tier_by_speed():
    _, _, ltpo = make_controller()
    assert ltpo.select_tier(2.0) == 120
    assert ltpo.select_tier(0.5) == 90
    assert ltpo.select_tier(0.1) == 60
    assert ltpo.select_tier(0.0) == 30


def test_observe_speed_switches_rate():
    sim, source, ltpo = make_controller()
    source.start()
    sim.run(until=1)
    ltpo.observe_speed(0.1)
    assert ltpo.current_hz == 60
    assert source.period == hz_to_period(120)  # pending until next tick
    sim.run(until=hz_to_period(120) + 1)
    assert source.period == hz_to_period(60)


def test_switch_gate_defers_until_open():
    sim, source, ltpo = make_controller()
    source.start()
    gate_open = {"value": False}
    ltpo.switch_gate = lambda hz: gate_open["value"]
    sim.run(until=1)
    ltpo.observe_speed(0.1)
    assert ltpo.current_hz == 120  # deferred
    gate_open["value"] = True
    ltpo.notify_buffers_drained()
    assert ltpo.current_hz == 60


def test_rate_listener_invoked():
    sim, source, ltpo = make_controller()
    source.start()
    sim.run(until=1)
    changes = []
    ltpo.add_rate_listener(lambda old, new: changes.append((old, new)))
    ltpo.observe_speed(0.5)
    assert changes == [(hz_to_period(120), hz_to_period(90))]


def test_switch_log_records():
    sim, source, ltpo = make_controller()
    source.start()
    sim.run(until=1)
    ltpo.observe_speed(0.1)
    assert ltpo.switch_log[-1][1:] == (120, 60)


def test_max_hz_filters_tiers():
    _, _, ltpo = make_controller(max_hz=60)
    assert ltpo.current_hz == 60
    assert ltpo.select_tier(5.0) == 60


def test_empty_tiers_rejected():
    sim = Simulator()
    source = HWVsyncSource(sim, hz_to_period(120))
    with pytest.raises(ConfigurationError):
        LTPOController(source, tiers=())
    with pytest.raises(ConfigurationError):
        LTPOController(source, max_hz=10)


def test_default_tiers_ordering():
    rates = [t.refresh_hz for t in DEFAULT_TIERS]
    assert rates == sorted(rates, reverse=True)


def test_custom_tiers():
    sim = Simulator()
    source = HWVsyncSource(sim, hz_to_period(144))
    ltpo = LTPOController(
        source, tiers=(RateTier(144, 0.5), RateTier(48, 0.0))
    )
    assert ltpo.select_tier(1.0) == 144
    assert ltpo.select_tier(0.2) == 48
