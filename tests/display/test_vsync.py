"""Tests for HW-VSync generation and software VSync channels."""

import pytest

from repro.display.vsync import HWVsyncSource, VsyncChannel, VsyncOffsets
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.units import ms


def make_source(period=ms(16.7)):
    sim = Simulator()
    return sim, HWVsyncSource(sim, period)


def test_ticks_at_fixed_period():
    sim, source = make_source(period=100)
    ticks = []
    source.add_listener(lambda t, i: ticks.append((t, i)))
    source.start()
    sim.run(until=450)
    assert ticks == [(0, 0), (100, 1), (200, 2), (300, 3), (400, 4)]


def test_start_at_custom_time():
    sim, source = make_source(period=100)
    ticks = []
    source.add_listener(lambda t, i: ticks.append(t))
    source.start(first_tick_at=50)
    sim.run(until=260)
    assert ticks == [50, 150, 250]


def test_stop_halts_ticks():
    sim, source = make_source(period=100)
    ticks = []
    source.add_listener(lambda t, i: ticks.append(t))
    source.start()
    sim.run(until=250)
    source.stop()
    sim.run(until=1000)
    assert len(ticks) == 3


def test_period_change_takes_effect_next_tick():
    sim, source = make_source(period=100)
    ticks = []
    source.add_listener(lambda t, i: ticks.append(t))
    source.start()
    sim.run(until=150)  # ticks at 0 and 100
    source.request_period(50)
    sim.run(until=320)
    # Change applies at the 200 tick: 200, then 250, 300.
    assert ticks == [0, 100, 200, 250, 300]


def test_invalid_period_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        HWVsyncSource(sim, 0)
    source = HWVsyncSource(sim, 100)
    with pytest.raises(ConfigurationError):
        source.request_period(-5)


def test_next_tick_time_reports_pending_tick():
    sim, source = make_source(period=100)
    source.start()
    sim.run(until=10)
    assert source.next_tick_time() == 100


def test_remove_listener():
    sim, source = make_source(period=100)
    ticks = []
    listener = lambda t, i: ticks.append(t)  # noqa: E731
    source.add_listener(listener)
    source.start()
    sim.run(until=50)
    source.remove_listener(listener)
    sim.run(until=500)
    assert ticks == [0]


def test_channel_delivers_one_shot_callbacks():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=0)
    seen = []
    channel.request_callback(lambda t, i: seen.append((t, i)))
    source.start()
    sim.run(until=250)
    # One request -> exactly one delivery, even across multiple ticks.
    assert seen == [(0, 0)]


def test_channel_offset_delays_delivery():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=30)
    seen = []
    channel.request_callback(lambda t, i: seen.append((t, sim.now)))
    source.start()
    sim.run(until=200)
    # Timestamp is the tick; delivery happens offset later.
    assert seen == [(0, 30)]


def test_channel_rerequest_from_callback():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=0)
    seen = []

    def on_tick(t, i):
        seen.append(t)
        if len(seen) < 3:
            channel.request_callback(on_tick)

    channel.request_callback(on_tick)
    source.start()
    sim.run(until=1000)
    assert seen == [0, 100, 200]


def test_channel_negative_offset_rejected():
    sim, source = make_source()
    with pytest.raises(ConfigurationError):
        VsyncChannel(source, offset=-1)


def test_offsets_validation():
    with pytest.raises(ConfigurationError):
        VsyncOffsets(app_offset=-1)
    offsets = VsyncOffsets(app_offset=100, rs_offset=200, sf_offset=300)
    assert offsets.app_offset == 100


def test_tick_times_recorded():
    sim, source = make_source(period=100)
    source.start()
    sim.run(until=350)
    assert source.tick_times == [0, 100, 200, 300]
    assert source.index == 3


def test_channel_same_tick_offset_delivery():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=40)
    seen = []
    source.start()
    sim.run(until=10)  # tick at t=0 fired; its offset edge (t=40) is ahead
    channel.request_callback(lambda t, i: seen.append((t, i, sim.now)))
    sim.run(until=60)
    # Served within this period at the t=40 edge, stamped with tick 0.
    assert seen == [(0, 0, 40)]


def test_channel_request_after_offset_waits_for_next_tick():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=40)
    seen = []
    source.start()
    sim.run(until=50)  # past this tick's offset edge
    channel.request_callback(lambda t, i: seen.append((t, sim.now)))
    sim.run(until=200)
    assert seen == [(100, 140)]


def test_channel_zero_offset_never_serves_same_tick():
    sim, source = make_source(period=100)
    channel = VsyncChannel(source, offset=0)
    seen = []
    source.start()
    sim.run(until=10)
    channel.request_callback(lambda t, i: seen.append(t))
    sim.run(until=150)
    assert seen == [100]
