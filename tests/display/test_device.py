"""Tests for device profiles (Table 1)."""

import pytest

from repro.display.device import (
    ALL_DEVICES,
    MATE_40_PRO,
    MATE_60_PRO,
    MATE_60_PRO_VULKAN,
    PIXEL_5,
    DeviceProfile,
    GraphicsBackend,
    OperatingSystem,
    device_by_name,
)
from repro.errors import ConfigurationError


def test_table1_refresh_rates():
    assert PIXEL_5.refresh_hz == 60
    assert MATE_40_PRO.refresh_hz == 90
    assert MATE_60_PRO.refresh_hz == 120


def test_table1_resolutions():
    assert (PIXEL_5.width, PIXEL_5.height) == (1080, 2340)
    assert (MATE_40_PRO.width, MATE_40_PRO.height) == (1344, 2772)
    assert (MATE_60_PRO.width, MATE_60_PRO.height) == (1260, 2720)


def test_os_and_backend():
    assert PIXEL_5.os is OperatingSystem.AOSP
    assert MATE_60_PRO.os is OperatingSystem.OPENHARMONY
    assert MATE_60_PRO_VULKAN.backend is GraphicsBackend.VULKAN


def test_default_buffer_counts():
    # Android triple buffering; OpenHarmony uses four buffers (§2).
    assert PIXEL_5.default_buffer_count == 3
    assert MATE_40_PRO.default_buffer_count == 4
    assert MATE_60_PRO.default_buffer_count == 4


def test_framebuffer_bytes_pixel5_about_10mb():
    # §6.4: a full-screen RGBA8888 buffer is ~10 MB on Pixel 5.
    assert PIXEL_5.framebuffer_bytes / (1024 * 1024) == pytest.approx(9.6, abs=0.5)


def test_framebuffer_bytes_mate_about_15mb():
    assert MATE_40_PRO.framebuffer_bytes / (1024 * 1024) == pytest.approx(14.2, abs=1.0)


def test_pixels_per_second():
    assert PIXEL_5.pixels_per_second == 1080 * 2340 * 60


def test_with_backend_copies():
    vulkan = MATE_60_PRO.with_backend(GraphicsBackend.VULKAN)
    assert vulkan.backend is GraphicsBackend.VULKAN
    assert vulkan.refresh_hz == MATE_60_PRO.refresh_hz


def test_at_refresh_rebases_period():
    game_device = MATE_60_PRO.at_refresh(30)
    assert game_device.refresh_hz == 30
    assert game_device.vsync_period == 33_333_333


def test_device_by_name_case_insensitive():
    assert device_by_name("google pixel 5") is PIXEL_5


def test_device_by_name_unknown_raises():
    with pytest.raises(ConfigurationError):
        device_by_name("Nokia 3310")


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigurationError):
        DeviceProfile(
            name="bad",
            release="never",
            os=OperatingSystem.AOSP,
            backend=GraphicsBackend.GLES,
            width=0,
            height=100,
            refresh_hz=60,
        )


def test_buffer_minimum_enforced():
    with pytest.raises(ConfigurationError):
        DeviceProfile(
            name="bad",
            release="never",
            os=OperatingSystem.AOSP,
            backend=GraphicsBackend.GLES,
            width=100,
            height=100,
            refresh_hz=60,
            default_buffer_count=1,
        )


def test_all_devices_covers_four_configs():
    assert len(ALL_DEVICES) == 4
