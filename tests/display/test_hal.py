"""Tests for the screen HAL / present fences."""

from repro.display.hal import PresentRecord, ScreenHAL


def make_record(frame_id=0, present_time=1000):
    return PresentRecord(
        frame_id=frame_id,
        present_time=present_time,
        vsync_index=1,
        content_timestamp=500,
        queue_depth_after=2,
        refresh_period=100,
    )


def test_signal_present_records():
    hal = ScreenHAL()
    hal.signal_present(make_record())
    assert hal.presented_count == 1
    assert hal.last_present().frame_id == 0


def test_listeners_notified_in_order():
    hal = ScreenHAL()
    seen = []
    hal.add_listener(lambda r: seen.append(("a", r.frame_id)))
    hal.add_listener(lambda r: seen.append(("b", r.frame_id)))
    hal.signal_present(make_record(frame_id=7))
    assert seen == [("a", 7), ("b", 7)]


def test_last_present_none_when_empty():
    assert ScreenHAL().last_present() is None


def test_multiple_presents_accumulate():
    hal = ScreenHAL()
    for i in range(5):
        hal.signal_present(make_record(frame_id=i, present_time=i * 100))
    assert hal.presented_count == 5
    assert [p.frame_id for p in hal.presents] == [0, 1, 2, 3, 4]
