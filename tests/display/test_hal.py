"""Tests for the screen HAL / present fences."""

from repro.display.hal import PresentRecord, ScreenHAL


def make_record(frame_id=0, present_time=1000):
    return PresentRecord(
        frame_id=frame_id,
        present_time=present_time,
        vsync_index=1,
        content_timestamp=500,
        queue_depth_after=2,
        refresh_period=100,
    )


def test_signal_present_records():
    hal = ScreenHAL()
    hal.signal_present(make_record())
    assert hal.presented_count == 1
    assert hal.last_present().frame_id == 0


def test_listeners_notified_in_order():
    hal = ScreenHAL()
    seen = []
    hal.add_listener(lambda r: seen.append(("a", r.frame_id)))
    hal.add_listener(lambda r: seen.append(("b", r.frame_id)))
    hal.signal_present(make_record(frame_id=7))
    assert seen == [("a", 7), ("b", 7)]


def test_last_present_none_when_empty():
    assert ScreenHAL().last_present() is None


def test_multiple_presents_accumulate():
    hal = ScreenHAL()
    for i in range(5):
        hal.signal_present(make_record(frame_id=i, present_time=i * 100))
    assert hal.presented_count == 5
    assert [p.frame_id for p in hal.presents] == [0, 1, 2, 3, 4]


def test_raising_listener_does_not_starve_later_listeners():
    hal = ScreenHAL()
    seen = []

    def bad_listener(record):
        raise RuntimeError("listener crash")

    hal.add_listener(bad_listener)
    hal.add_listener(lambda r: seen.append(r.frame_id))
    hal.signal_present(make_record(frame_id=3, present_time=700))
    assert seen == [3]  # the later listener still observed the fence


def test_contained_exception_recorded_not_swallowed():
    hal = ScreenHAL()

    def bad_listener(record):
        raise RuntimeError("listener crash")

    hal.add_listener(bad_listener)
    hal.signal_present(make_record(frame_id=1, present_time=900))
    (contained,) = hal.contained_errors
    assert contained.time == 900
    assert "bad_listener" in contained.listener
    assert "listener crash" in contained.error


def test_on_contained_hooks_fire():
    hal = ScreenHAL()
    observed = []
    hal.on_contained.append(lambda record, exc: observed.append((record.frame_id, exc)))
    hal.add_listener(lambda r: (_ for _ in ()).throw(ValueError("x")))
    hal.signal_present(make_record(frame_id=2))
    assert len(observed) == 1
    assert observed[0][0] == 2
    assert isinstance(observed[0][1], ValueError)


def test_prepended_listener_runs_first():
    hal = ScreenHAL()
    order = []
    hal.add_listener(lambda r: order.append("normal"))
    hal.add_listener(lambda r: order.append("first"), prepend=True)
    hal.signal_present(make_record())
    assert order == ["first", "normal"]
