"""Tests for the Figure 3 flagship dataset."""

from repro.display.trend import FLAGSHIP_DATASET, growth_factor, pixels_per_second_series


def test_series_sorted_by_year():
    years = [year for year, _, _ in pixels_per_second_series()]
    assert years == sorted(years)


def test_growth_factor_about_25x():
    # The paper quotes ~25x growth since 2010.
    assert 15 <= growth_factor() <= 40


def test_iphone4_baseline_present():
    models = {r.model for r in FLAGSHIP_DATASET}
    assert "iPhone 4" in models
    assert "Galaxy S" in models


def test_pixels_per_second_formula():
    record = FLAGSHIP_DATASET[0]
    assert record.pixels_per_second == record.width * record.height * record.refresh_hz


def test_dataset_spans_2010_to_2024():
    years = {r.year for r in FLAGSHIP_DATASET}
    assert min(years) == 2010
    assert max(years) == 2024


def test_modern_high_refresh_devices_present():
    assert any(r.refresh_hz >= 120 for r in FLAGSHIP_DATASET)
