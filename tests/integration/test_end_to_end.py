"""Integration tests: full scheduler runs checked across module boundaries."""

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.metrics.fdps import fdps
from repro.metrics.latency import latency_summary
from repro.testing import light_params, make_animation
from repro.trace.analyze import analyze
from repro.trace.record import record_run
from repro.units import hz_to_period
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.scenarios import Scenario


def paired_runs(scenario_name="int-pair", target=3.0, profile="moderate", runs=2):
    scenario = Scenario(
        name=scenario_name, description="", refresh_hz=60,
        target_vsync_fdps=target, profile=profile, bursts=16,
    )
    vsync, dvsync = [], []
    for repetition in range(runs):
        vsync.append(VSyncScheduler(scenario.build_driver(repetition), PIXEL_5, buffer_count=3).run())
        dvsync.append(
            DVSyncScheduler(
                scenario.build_driver(repetition), PIXEL_5, DVSyncConfig(buffer_count=4)
            ).run()
        )
    return vsync, dvsync


def test_identical_workloads_across_architectures():
    vsync, dvsync = paired_runs(runs=1)
    vsync_loads = [f.workload for f in vsync[0].frames]
    dvsync_loads = [f.workload for f in dvsync[0].frames]
    # Same seeded trace: frame i costs the same under both architectures.
    common = min(len(vsync_loads), len(dvsync_loads))
    assert vsync_loads[:common] == dvsync_loads[:common]


def test_dvsync_reduces_drops_on_paired_workloads():
    vsync, dvsync = paired_runs()
    vsync_drops = sum(len(r.effective_drops) for r in vsync)
    dvsync_drops = sum(len(r.effective_drops) for r in dvsync)
    assert dvsync_drops < vsync_drops


def test_dvsync_never_displays_out_of_order():
    _, dvsync = paired_runs(runs=1)
    presents = dvsync[0].presents
    times = [p.present_time for p in presents]
    frame_ids = [p.frame_id for p in presents]
    assert times == sorted(times)
    assert frame_ids == sorted(frame_ids)  # FIFO: no frame overtakes another


def test_every_triggered_frame_eventually_displays():
    vsync, dvsync = paired_runs(runs=1)
    for result in (vsync[0], dvsync[0]):
        assert all(f.presented for f in result.frames)


def test_trace_analysis_agrees_with_metrics_both_archs():
    vsync, dvsync = paired_runs(runs=1)
    for result in (vsync[0], dvsync[0]):
        analysis = analyze(record_run(result))
        assert analysis.fdps == pytest.approx(fdps(result), rel=0.05, abs=0.05)


def test_mate60_at_120hz_runs_clean():
    driver = make_animation(light_params(refresh_hz=120), "int-120", duration_ms=500)
    result = DVSyncScheduler(driver, MATE_60_PRO, DVSyncConfig(buffer_count=4)).run()
    assert len(result.effective_drops) == 0
    period = hz_to_period(120)
    assert latency_summary(result).mean_ms == pytest.approx(2 * period / 1e6, abs=0.5)


def test_buffer_counts_respected_end_to_end():
    scenario = Scenario(
        name="int-bufs", description="", refresh_hz=60, target_vsync_fdps=0.0
    )
    scheduler = DVSyncScheduler(
        scenario.build_driver(), PIXEL_5, DVSyncConfig(buffer_count=5)
    )
    result = scheduler.run()
    assert scheduler.buffer_queue.capacity == 5
    assert scheduler.buffer_queue.max_queued_depth <= 4
    assert result.buffer_count == 5


def test_no_tearing_invariant_latch_on_edges_only():
    _, dvsync = paired_runs(runs=1)
    period = hz_to_period(60)
    for frame in dvsync[0].presented_frames:
        assert frame.latch_time % period in (0, 1, period - 1)
