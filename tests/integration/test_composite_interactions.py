"""Integration: composite sessions mixing animations and interactions."""

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.testing import light_params, make_animation
from repro.units import ms
from repro.workloads.composite import CompositeDriver
from repro.workloads.drivers import InteractionDriver
from repro.workloads.touch import SwipeGesture


def make_mixed_session(name="mix"):
    animation = make_animation(light_params(), f"{name}-anim", duration_ms=250)

    def factory(start, _n=f"{name}-swipe"):
        return SwipeGesture(start, ms(300), name=_n)

    interaction = InteractionDriver(f"{name}-touch", light_params(), factory)
    return CompositeDriver(name, [animation, interaction], gap_ns=ms(200))


def test_interaction_segment_uses_ipl_under_dvsync():
    driver = make_mixed_session("mix-ipl")
    scheduler = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4))
    result = scheduler.run()
    predicted = [f for f in result.frames if f.input_predicted]
    assert predicted, "interaction segment should route through the IPL"
    # Predictions only happen inside the interaction's window.
    interaction_start = ms(250) + ms(200)
    assert all(f.content_timestamp >= interaction_start - 1 for f in predicted)


def test_animation_segment_stays_oblivious():
    driver = make_mixed_session("mix-anim")
    scheduler = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4))
    result = scheduler.run()
    animation_frames = [
        f for f in result.frames if f.content_timestamp < ms(250)
    ]
    assert animation_frames
    assert all(not f.input_predicted for f in animation_frames)
    assert all(f.decoupled for f in animation_frames)


def test_composite_observe_input_routes_to_active_child():
    driver = make_mixed_session("mix-route")
    driver.begin(0)
    # During the animation segment there is no input stream.
    assert driver.observe_input(ms(100)) == []
    # During the interaction segment, samples exist and are causal.
    samples = driver.observe_input(ms(600))
    assert samples
    assert all(t <= ms(600) for t, _ in samples)


def test_no_drops_across_mixed_session():
    driver = make_mixed_session("mix-clean")
    scheduler = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4))
    result = scheduler.run()
    assert len(result.effective_drops) == 0
    assert all(f.presented for f in result.frames)


def test_prediction_error_bounded_in_composite():
    driver = make_mixed_session("mix-err")
    scheduler = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=4))
    result = scheduler.run()
    errors = [
        abs(driver.true_value(f.present_time) - f.content_value)
        for f in result.presented_frames
        if f.input_predicted and f.content_value is not None
    ]
    assert errors
    # Steady-swipe extrapolation error stays tiny in panel-height units.
    assert sorted(errors)[len(errors) // 2] < 0.05
