"""Edge-case and failure-injection tests across the full stack."""

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.pipeline.frame import FrameWorkload
from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.units import hz_to_period, ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.drivers import TraceDriver
from repro.workloads.frametrace import FrameTrace

PERIOD = hz_to_period(60)


def test_single_frame_animation():
    driver = make_animation(light_params(), "edge-one", duration_ms=10)
    for result in (run_vsync(driver), run_dvsync(make_animation(light_params(), "edge-one", duration_ms=10))):
        assert len(result.frames) == 1
        assert result.frames[0].presented


def test_zero_cost_frames():
    trace = FrameTrace(
        name="edge-zero", refresh_hz=60,
        workloads=[FrameWorkload(ui_ns=0, render_ns=0) for _ in range(10)],
    )
    result = run_vsync(TraceDriver(trace))
    assert len(result.effective_drops) == 0
    assert all(f.presented for f in result.frames)


def test_monster_frame_ten_periods():
    driver = make_animation(light_params(), "edge-monster", duration_ms=500)
    workload = driver._workloads[5]
    driver._workloads[5] = dataclasses.replace(workload, render_ns=10 * PERIOD)
    baseline = run_vsync(driver)
    assert len(baseline.effective_drops) >= 8
    driver = make_animation(light_params(), "edge-monster", duration_ms=500)
    driver._workloads[5] = dataclasses.replace(workload, render_ns=10 * PERIOD)
    improved = run_dvsync(driver)
    # The 3-buffer window absorbs part, not all, of a 10-period stall.
    assert 1 <= len(improved.effective_drops) < len(baseline.effective_drops)


def test_every_frame_heavy_throughput_bound():
    # Sustained overload: no scheduler can hit full rate; neither may wedge.
    trace = FrameTrace(
        name="edge-overload", refresh_hz=60,
        workloads=[FrameWorkload(ui_ns=ms(2), render_ns=ms(25)) for _ in range(60)],
    )
    baseline = run_vsync(TraceDriver(trace))
    improved = run_dvsync(TraceDriver(trace))
    assert baseline.presents and improved.presents
    assert len(baseline.effective_drops) > 10
    # D-VSync cannot create capacity from nothing (§4.2's limits).
    assert len(improved.effective_drops) > 5


def test_minimum_buffer_capacity_vsync():
    driver = make_animation(light_params(), "edge-two-bufs", duration_ms=300)
    result = VSyncScheduler(driver, PIXEL_5, buffer_count=2).run()
    assert all(f.presented for f in result.frames)


def test_dvsync_minimum_three_buffers():
    driver = make_animation(light_params(), "edge-three", duration_ms=300)
    result = DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=3)).run()
    assert len(result.effective_drops) == 0


def test_high_refresh_165hz():
    params = light_params(refresh_hz=165)
    driver = make_animation(params, "edge-165", duration_ms=300)
    result = run_dvsync(driver, device=MATE_60_PRO.at_refresh(165))
    assert len(result.effective_drops) == 0
    assert len(result.frames) >= 48


def test_prerender_limit_one_behaves_like_vsync_pacing():
    driver = make_animation(light_params(), "edge-limit1", duration_ms=400)
    config = DVSyncConfig(buffer_count=4, prerender_limit=1)
    result = DVSyncScheduler(driver, PIXEL_5, config).run()
    # With limit 1 the queue can never accumulate beyond one buffer.
    assert max(p.queue_depth_after for p in result.presents) <= 1


def test_back_to_back_bursts_with_zero_gap():
    driver = make_animation(
        light_params(), "edge-nogap", duration_ms=200, bursts=3, burst_period_ms=200
    )
    result = run_dvsync(driver)
    assert len(result.effective_drops) == 0
    # Frame count ~ 3 bursts x 12 frames.
    assert len(result.frames) >= 34


def test_long_idle_gap_between_bursts():
    driver = make_animation(
        light_params(), "edge-idle", duration_ms=100, bursts=2, burst_period_ms=2000
    )
    result = run_dvsync(driver)
    # Idle repeats are not janks.
    assert len(result.effective_drops) == 0
    assert result.end_time >= ms(2100) - PERIOD
