"""Whole-stack determinism: identical inputs, identical artifacts."""

from repro.experiments.registry import run_experiment
from repro.testing import light_params, make_animation, run_dvsync
from repro.workloads.games import record_game_trace, GAME_SPECS
from repro.workloads.os_cases import os_case_scenarios


def test_experiment_reruns_are_identical():
    first = run_experiment("fig01", quick=True)
    second = run_experiment("fig01", quick=True)
    assert first.rows == second.rows
    assert first.comparisons == second.comparisons


def test_scenario_registry_is_stable():
    a = [(s.name, s.target_vsync_fdps) for s in os_case_scenarios("mate60-vulkan")]
    b = [(s.name, s.target_vsync_fdps) for s in os_case_scenarios("mate60-vulkan")]
    assert a == b


def test_game_traces_identical_across_processes_in_principle():
    # Seeds derive from names via SHA-256, not Python's salted hash, so the
    # same trace is produced in any process.
    trace = record_game_trace(GAME_SPECS[3], run=2)
    again = record_game_trace(GAME_SPECS[3], run=2)
    assert trace.workloads == again.workloads


def test_dvsync_full_run_reproducible_to_the_nanosecond():
    first = run_dvsync(make_animation(light_params(), "det-run", duration_ms=600))
    second = run_dvsync(make_animation(light_params(), "det-run", duration_ms=600))
    assert [
        (f.trigger_time, f.content_timestamp, f.queued_time, f.present_time)
        for f in first.frames
    ] == [
        (f.trigger_time, f.content_timestamp, f.queued_time, f.present_time)
        for f in second.frames
    ]
    assert first.extra == second.extra
