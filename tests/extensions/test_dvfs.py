"""Tests for the DVFS governor extension."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions.dvfs import FrequencyGovernor, GovernedDriver
from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.units import hz_to_period

PERIOD = hz_to_period(60)


def make_governor(window=1.0, **kwargs):
    return FrequencyGovernor(window_periods=window, period_ns=PERIOD, **kwargs)


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        make_governor(window=0)
    with pytest.raises(ConfigurationError):
        make_governor(levels=(0.0, 1.0))
    with pytest.raises(ConfigurationError):
        make_governor(margin=0.5)


def test_small_estimate_picks_lowest_level():
    governor = make_governor(window=1.0)
    governor._estimate_ns = PERIOD // 10
    assert governor.choose_level() == 0.5


def test_large_estimate_forces_full_speed():
    governor = make_governor(window=1.0)
    governor._estimate_ns = PERIOD
    assert governor.choose_level() == 1.0


def test_bigger_window_allows_lower_level():
    tight = make_governor(window=1.0)
    roomy = make_governor(window=3.0)
    for governor in (tight, roomy):
        governor._estimate_ns = int(PERIOD * 0.7)
    assert roomy.choose_level() < tight.choose_level()


def test_observe_updates_estimate_and_energy():
    governor = make_governor()
    governor.observe(PERIOD, 0.5)
    assert governor.stats.frames == 1
    assert governor.stats.energy_index == pytest.approx(PERIOD * 0.25)
    assert governor.stats.baseline_energy_index == PERIOD
    assert governor.stats.energy_saving_percent == pytest.approx(75.0)


def test_governed_driver_stretches_workloads():
    inner = make_animation(light_params(), "dvfs-stretch", duration_ms=300)
    governor = make_governor(window=3.0)
    governor._estimate_ns = PERIOD // 10  # low estimate -> level 0.5
    governed = GovernedDriver(inner, governor)
    governed.begin(0)
    raw = inner.make_workload(0, 0)
    stretched = governed.make_workload(0, 0)
    assert stretched.total_ns == pytest.approx(raw.total_ns * 2, rel=0.01)


def test_governed_driver_preserves_protocol():
    inner = make_animation(light_params(), "dvfs-proto", duration_ms=300)
    governed = GovernedDriver(inner, make_governor(window=3.0))
    governed.begin(0)
    assert governed.wants_frame(0, 0) == inner.wants_frame(0, 0)
    assert governed.finished(10**12) == inner.finished(10**12)
    assert governed.true_value(0) == inner.true_value(0)


def test_dvsync_absorbs_governed_stretch_better_than_vsync():
    import dataclasses

    # A loaded-but-sustainable body: stretched to ~half clock its render
    # stage fluctuates around the VSync deadline.
    params = dataclasses.replace(light_params(), base_fraction=0.6, sigma=0.35)

    def governed(name):
        inner = make_animation(params, name, duration_ms=600)
        return GovernedDriver(inner, make_governor(window=3.0, margin=1.0))

    baseline = run_vsync(governed("dvfs-run"))
    improved = run_dvsync(governed("dvfs-run"))
    # Near-deadline stretched frames jank VSync's single-period budget but
    # sit inside D-VSync's pre-render window.
    assert len(baseline.effective_drops) >= 1
    assert len(improved.effective_drops) < len(baseline.effective_drops)


def test_energy_ledger_accumulates_over_run():
    inner = make_animation(light_params(), "dvfs-ledger", duration_ms=400)
    governor = make_governor(window=3.0)
    result = run_dvsync(GovernedDriver(inner, governor))
    assert governor.stats.frames == len(result.frames)
    assert 0 < governor.stats.energy_saving_percent < 100
