"""Tests for the top-level ``repro.simulate`` facade."""

import pytest

import repro
from repro import PIXEL_5, Scenario, simulate
from repro.core.config import DVSyncConfig
from repro.errors import ConfigurationError
from repro.telemetry.session import Telemetry
from repro.testing import light_params, make_animation


def make_scenario():
    return Scenario(
        name="facade-demo",
        description="test scenario",
        refresh_hz=60,
        target_vsync_fdps=1.0,
        bursts=2,
    )


def test_exported_from_package_root():
    assert repro.simulate is simulate
    assert "simulate" in repro.__all__


def test_scenario_defaults_to_dvsync():
    result = simulate(make_scenario(), PIXEL_5)
    assert result.scheduler == "dvsync"
    assert result.telemetry is None


def test_scenario_vsync_with_buffer_count():
    with pytest.deprecated_call(match="SimConfig"):
        result = simulate(make_scenario(), PIXEL_5, architecture="vsync", config=3)
    assert result.scheduler == "vsync"
    assert result.buffer_count == 3


def test_scenario_dvsync_config_object():
    config = DVSyncConfig(buffer_count=5)
    with pytest.deprecated_call(match="SimConfig"):
        result = simulate(make_scenario(), PIXEL_5, config=config)
    assert result.buffer_count == 5


def test_scenario_int_config_means_dvsync_buffers():
    with pytest.deprecated_call(match="SimConfig"):
        result = simulate(make_scenario(), PIXEL_5, config=5)
    assert result.scheduler == "dvsync"
    assert result.buffer_count == 5


def test_seed_gives_independent_repetitions():
    first = simulate(make_scenario(), PIXEL_5, seed=0)
    second = simulate(make_scenario(), PIXEL_5, seed=1)
    identical = simulate(make_scenario(), PIXEL_5, seed=0)
    assert [f.workload for f in first.frames] == [
        f.workload for f in identical.frames
    ]
    assert [f.workload for f in first.frames] != [
        f.workload for f in second.frames
    ]


def test_live_driver_path(pixel5):
    driver = make_animation(light_params(), "facade-live")
    with pytest.deprecated_call(match="SimConfig"):
        result = simulate(driver, pixel5, architecture="vsync", config=3)
    assert result.scenario == "facade-live"
    assert result.scheduler == "vsync"


def test_telemetry_flag_attaches_snapshot():
    result = simulate(make_scenario(), PIXEL_5, telemetry=True)
    assert result.telemetry is not None
    assert result.telemetry.trace.spans


def test_live_driver_accepts_session(pixel5):
    session = Telemetry("facade-own")
    driver = make_animation(light_params(), "facade-session")
    result = simulate(driver, pixel5, architecture="vsync", telemetry=session)
    assert result.telemetry is not None
    assert session.trace.spans


def test_scenario_rejects_session_object():
    with pytest.raises(ConfigurationError, match="on/off flag"):
        simulate(make_scenario(), PIXEL_5, telemetry=Telemetry("x"))


def test_seed_rejected_for_live_driver(pixel5):
    driver = make_animation(light_params(), "facade-seed")
    with pytest.raises(ConfigurationError, match="seed"):
        simulate(driver, pixel5, seed=1)


def test_unknown_architecture_rejected():
    with pytest.raises(ConfigurationError, match="architecture"):
        simulate(make_scenario(), PIXEL_5, architecture="tripple-buffer")


def test_dvsync_config_rejected_for_vsync():
    with pytest.deprecated_call(match="SimConfig"), pytest.raises(
        ConfigurationError, match="DVSyncConfig"
    ):
        simulate(
            make_scenario(),
            PIXEL_5,
            architecture="vsync",
            config=DVSyncConfig(buffer_count=4),
        )


def test_bad_config_type_rejected():
    with pytest.raises(ConfigurationError, match="config"):
        simulate(make_scenario(), PIXEL_5, config="four")


def test_bad_scenario_type_rejected():
    with pytest.raises(ConfigurationError, match="Scenario"):
        simulate("fig05", PIXEL_5)
