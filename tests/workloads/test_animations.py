"""Tests for motion curves."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.animations import (
    CURVES,
    DecelerateCurve,
    EaseInOutCurve,
    LinearCurve,
    SpringCurve,
    curve_by_name,
)


@pytest.mark.parametrize("name", sorted(CURVES))
def test_curves_start_at_zero(name):
    assert curve_by_name(name).position(0.0) == pytest.approx(0.0, abs=0.05)


@pytest.mark.parametrize("name", ["linear", "ease-in-out", "decelerate"])
def test_monotone_curves_end_at_one(name):
    assert curve_by_name(name).position(1.0) == pytest.approx(1.0, abs=0.01)


@pytest.mark.parametrize("name", ["linear", "ease-in-out", "decelerate"])
def test_monotone_curves_nondecreasing(name):
    curve = curve_by_name(name)
    values = [curve.position(i / 50) for i in range(51)]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_positions_clamped_outside_unit_interval():
    curve = EaseInOutCurve()
    assert curve.position(-1.0) == curve.position(0.0)
    assert curve.position(2.0) == curve.position(1.0)


def test_linear_velocity_constant():
    curve = LinearCurve()
    assert curve.velocity(0.3) == 1.0
    assert curve.velocity(0.9) == 1.0


def test_ease_in_out_velocity_peaks_mid():
    curve = EaseInOutCurve()
    assert curve.velocity(0.5) > curve.velocity(0.05)
    assert curve.velocity(0.5) > curve.velocity(0.95)


def test_decelerate_velocity_decreases():
    curve = DecelerateCurve(rate=4.0)
    assert curve.velocity(0.0) > curve.velocity(0.5) > curve.velocity(1.0)


def test_decelerate_rate_validation():
    with pytest.raises(WorkloadError):
        DecelerateCurve(rate=0)


def test_spring_overshoots_and_settles():
    curve = SpringCurve(damping=0.3, oscillations=2.0)
    values = [curve.position(i / 100) for i in range(101)]
    assert max(values) > 1.0  # overshoot
    assert values[-1] == pytest.approx(1.0, abs=0.1)


def test_spring_validation():
    with pytest.raises(WorkloadError):
        SpringCurve(damping=1.5)
    with pytest.raises(WorkloadError):
        SpringCurve(oscillations=0)


def test_velocity_matches_finite_difference():
    curve = EaseInOutCurve()
    h = 1e-5
    for u in (0.2, 0.5, 0.8):
        numeric = (curve.position(u + h) - curve.position(u - h)) / (2 * h)
        assert curve.velocity(u) == pytest.approx(numeric, rel=1e-3)


def test_unknown_curve_raises():
    with pytest.raises(WorkloadError):
        curve_by_name("warp-speed")
