"""Tests for frame traces."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.units import hz_to_period
from repro.workloads.frametrace import FrameTrace


def make_trace(times_ms=(5.0, 8.0, 20.0), refresh_hz=60):
    workloads = [
        FrameWorkload(ui_ns=int(t * 1e6 * 0.3), render_ns=int(t * 1e6 * 0.7))
        for t in times_ms
    ]
    return FrameTrace(name="t", refresh_hz=refresh_hz, workloads=workloads)


def test_len_and_indexing():
    trace = make_trace()
    assert len(trace) == 3
    assert trace[0].total_ns == pytest.approx(5e6, abs=2)


def test_empty_trace_rejected():
    with pytest.raises(WorkloadError):
        FrameTrace(name="empty", refresh_hz=60, workloads=[])


def test_invalid_rate_rejected():
    with pytest.raises(WorkloadError):
        FrameTrace(name="bad", refresh_hz=0, workloads=[FrameWorkload(1, 1)])


def test_duration_is_count_times_period():
    trace = make_trace()
    assert trace.duration_ns == 3 * hz_to_period(60)


def test_long_frame_fraction():
    trace = make_trace(times_ms=(5.0, 8.0, 20.0))  # one frame > 16.7 ms
    assert trace.long_frame_fraction() == pytest.approx(1 / 3)


def test_stats_fields():
    stats = make_trace().stats()
    assert stats["max_ms"] == pytest.approx(20.0, abs=0.01)
    assert 0 < stats["mean_ms"] < 20
    assert stats["long_fraction"] == pytest.approx(1 / 3)


def test_dict_roundtrip():
    trace = make_trace()
    clone = FrameTrace.from_dict(trace.to_dict())
    assert clone.name == trace.name
    assert clone.refresh_hz == trace.refresh_hz
    assert clone.workloads == trace.workloads


def test_roundtrip_preserves_category():
    workloads = [FrameWorkload(1, 2, category=FrameCategory.REALTIME)]
    trace = FrameTrace(name="rt", refresh_hz=30, workloads=workloads)
    clone = FrameTrace.from_dict(trace.to_dict())
    assert clone[0].category is FrameCategory.REALTIME


def test_malformed_payload_raises():
    with pytest.raises(WorkloadError):
        FrameTrace.from_dict({"name": "x"})
