"""Tests for the composite (multi-scene) driver."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory
from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.units import ms
from repro.workloads.composite import CompositeDriver


def make_composite(segments=3, duration_ms=200.0, gap_ms=250.0, name="comp"):
    children = [
        make_animation(light_params(), f"{name}-{i}", duration_ms=duration_ms)
        for i in range(segments)
    ]
    return CompositeDriver(name, children, gap_ns=ms(gap_ms))


def test_requires_children():
    with pytest.raises(WorkloadError):
        CompositeDriver("empty", [])


def test_negative_gap_rejected():
    child = make_animation(light_params(), "c0", duration_ms=100)
    with pytest.raises(WorkloadError):
        CompositeDriver("neg", [child], gap_ns=-1)


def test_segments_play_sequentially():
    driver = make_composite()
    driver.begin(0)
    # Segment windows: [0,200), [450,650), [900,1100) ms.
    assert driver.wants_frame(ms(100), now=ms(100))
    assert not driver.wants_frame(ms(300), now=ms(300))  # gap
    assert driver.wants_frame(ms(500), now=ms(500))
    assert driver.finished(ms(1100))
    assert not driver.finished(ms(1000))


def test_all_segments_render_under_both_architectures():
    expected = 3 * 12  # 3 segments x 200 ms at 60 Hz
    vsync_result = run_vsync(make_composite(name="comp-vs"))
    dvsync_result = run_dvsync(make_composite(name="comp-dv"))
    for result in (vsync_result, dvsync_result):
        assert len(result.frames) == pytest.approx(expected, abs=3)
        assert len(result.effective_drops) == 0


def test_content_values_follow_each_segment_curve():
    driver = make_composite(name="comp-curve")
    driver.begin(0)
    # Each segment restarts its own ease curve.
    assert driver.true_value(ms(0)) == pytest.approx(0.0, abs=0.01)
    assert driver.true_value(ms(199)) == pytest.approx(1.0, abs=0.05)
    assert driver.true_value(ms(450)) == pytest.approx(0.0, abs=0.01)


def test_speed_zero_in_gaps():
    driver = make_composite(name="comp-speed")
    driver.begin(0)
    assert driver.animation_speed(ms(300)) == 0.0
    assert driver.animation_speed(ms(100)) > 0.0


def test_mixed_category_children():
    animation = make_animation(light_params(), "comp-anim", duration_ms=200)
    import dataclasses

    realtime_params = dataclasses.replace(
        light_params(), category=FrameCategory.REALTIME
    )
    realtime = make_animation(realtime_params, "comp-rt", duration_ms=200)
    driver = CompositeDriver("comp-mixed", [animation, realtime], gap_ns=ms(100))
    result = run_dvsync(driver)
    decoupled = [f for f in result.frames if f.decoupled]
    traditional = [f for f in result.frames if not f.decoupled]
    assert decoupled and traditional


def test_queue_drains_between_segments():
    result = run_dvsync(make_composite(name="comp-drain", gap_ms=500))
    # By each segment boundary the queue is empty; accumulation restarts.
    boundaries = [ms(200 + 700 * k) for k in range(2)]
    for boundary in boundaries:
        around = [
            p.queue_depth_after
            for p in result.presents
            if boundary <= p.present_time <= boundary + ms(120)
        ]
        assert around and min(around) == 0
