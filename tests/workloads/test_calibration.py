"""Calibration-band tests (DESIGN.md §6).

These pin the contract between the workload inversion and the simulated
VSync baseline: a scenario built for a target drop rate must land within a
band of it, and the D-VSync arm must then reproduce the paper's reduction
shape. Bands are deliberately loose — they catch regressions in the
scheduler or the yield tables, not sampling noise.
"""

import statistics

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.experiments.runner import run_driver
from repro.metrics.fdps import fdps
from repro.workloads.scenarios import Scenario

RUNS = 3


def measure(scenario, device, architecture, buffers):
    values = []
    for repetition in range(RUNS):
        driver = scenario.build_driver(repetition)
        if architecture == "vsync":
            result = run_driver(driver, device, "vsync", buffer_count=buffers)
        else:
            result = run_driver(
                driver, device, "dvsync", dvsync_config=DVSyncConfig(buffer_count=buffers)
            )
        values.append(fdps(result))
    return statistics.fmean(values)


@pytest.mark.parametrize(
    "profile,target,hz",
    [
        ("scattered", 2.0, 60),
        ("moderate", 3.0, 60),
        ("fluctuation", 8.0, 120),
        ("fluctuation-deep", 6.0, 120),
    ],
)
def test_vsync_baseline_lands_near_target(profile, target, hz):
    device = PIXEL_5 if hz == 60 else MATE_60_PRO
    buffers = 3 if hz == 60 else 4
    scenario = Scenario(
        name=f"cal-{profile}", description="", refresh_hz=hz,
        target_vsync_fdps=target, profile=profile, bursts=20,
    )
    measured = measure(scenario, device, "vsync", buffers)
    assert measured == pytest.approx(target, rel=0.6), (
        f"{profile}: baseline {measured:.2f} vs target {target}"
    )


def test_dvsync_reduces_scattered_heavily():
    scenario = Scenario(
        name="cal-red-scattered", description="", refresh_hz=60,
        target_vsync_fdps=3.0, profile="scattered", bursts=20,
    )
    baseline = measure(scenario, PIXEL_5, "vsync", 3)
    improved = measure(scenario, PIXEL_5, "dvsync", 4)
    assert improved < 0.45 * baseline  # paper band: ~70-95 % reduction


def test_dvsync_barely_improves_skewed():
    scenario = Scenario(
        name="cal-red-skewed", description="", refresh_hz=60,
        target_vsync_fdps=3.0, profile="skewed", bursts=20,
    )
    baseline = measure(scenario, PIXEL_5, "vsync", 3)
    improved = measure(scenario, PIXEL_5, "dvsync", 4)
    assert improved > 0.5 * baseline  # QQMusic-like resistance


def test_more_buffers_reduce_more():
    scenario = Scenario(
        name="cal-sweep", description="", refresh_hz=60,
        target_vsync_fdps=3.0, profile="moderate", bursts=20,
    )
    four = measure(scenario, PIXEL_5, "dvsync", 4)
    seven = measure(scenario, PIXEL_5, "dvsync", 7)
    assert seven <= four
