"""Tests for the power-law frame-time model."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory
from repro.sim.rng import SeededRng
from repro.units import hz_to_period, to_ms
from repro.workloads.distributions import (
    FLUCTUATION,
    MODERATE,
    PROFILES,
    SCATTERED,
    SKEWED,
    FrameTimeParams,
    PowerLawFrameModel,
    TailProfile,
    fig1_model,
    params_for_target_fdps,
)


def make_model(**overrides):
    params = FrameTimeParams(refresh_hz=60, **overrides)
    return PowerLawFrameModel(params, SeededRng(42))


def test_no_key_frames_when_prob_zero():
    model = make_model(key_prob=0.0)
    workloads = model.generate(500)
    period = hz_to_period(60)
    assert all(w.render_ns < period for w in workloads)
    assert model.key_frames_emitted == 0


def test_key_fraction_near_stationary_probability():
    model = make_model(key_prob=0.05, tail=MODERATE)
    model.generate(8000)
    fraction = model.key_frames_emitted / model.frames_emitted
    assert fraction == pytest.approx(0.05, abs=0.012)


def test_key_frames_exceed_deadline_in_render_stage():
    model = make_model(key_prob=0.2, tail=SCATTERED)
    period = hz_to_period(60)
    keys = [w for w in model.generate(2000) if w.render_ns > period]
    assert keys, "expected some key frames"
    # Excess bounded by the profile's truncation.
    for workload in keys:
        assert workload.render_ns <= period * (1.02 + SCATTERED.max_excess) + 1e6


def test_body_truncation_below_period():
    model = make_model(key_prob=0.0, body_max_fraction=0.95)
    period = hz_to_period(60)
    assert all(w.total_ns <= period for w in model.generate(2000))


def test_ui_render_split():
    model = make_model(key_prob=0.0, ui_fraction=0.4)
    workload = model.next_workload()
    assert workload.ui_ns == pytest.approx(0.4 * (workload.ui_ns + workload.render_ns), rel=0.02)


def test_gpu_fraction_split():
    model = make_model(key_prob=0.0, gpu_fraction=0.4)
    workload = model.next_workload()
    assert workload.gpu_ns > 0
    assert workload.gpu_ns == pytest.approx(0.4 * workload.total_ns, rel=0.05)


def test_category_stamped():
    params = FrameTimeParams(
        refresh_hz=60, category=FrameCategory.PREDICTABLE_INTERACTION
    )
    model = PowerLawFrameModel(params, SeededRng(1))
    assert model.next_workload().category is FrameCategory.PREDICTABLE_INTERACTION


def test_key_weight_zero_suppresses_keys():
    model = make_model(key_prob=0.3)
    for _ in range(500):
        model.next_workload(key_weight=0.0)
    assert model.key_frames_emitted == 0


def test_key_weight_scales_rate():
    low = make_model(key_prob=0.02)
    high = make_model(key_prob=0.02)
    for _ in range(6000):
        low.next_workload(key_weight=0.5)
        high.next_workload(key_weight=2.0)
    assert high.key_frames_emitted > 2 * low.key_frames_emitted


def test_burstiness_clusters_key_frames():
    clustered_profile = TailProfile("c", offset=0.1, scale=1.0, max_excess=4.0, burstiness=0.7)
    spread_profile = TailProfile("s", offset=0.1, scale=1.0, max_excess=4.0, burstiness=0.0)

    def mean_run_length(profile):
        model = PowerLawFrameModel(
            FrameTimeParams(refresh_hz=60, key_prob=0.05, tail=profile), SeededRng(7)
        )
        period = hz_to_period(60)
        flags = [w.render_ns > period for w in model.generate(8000)]
        runs, current = [], 0
        for flag in flags:
            if flag:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        return sum(runs) / len(runs)

    assert mean_run_length(clustered_profile) > 1.8
    assert mean_run_length(spread_profile) < 1.3


def test_expected_drops_per_key_frame_monotone_in_scale():
    small = TailProfile("a", offset=0.1, scale=0.5, max_excess=5.0, burstiness=0.0)
    large = TailProfile("b", offset=0.1, scale=2.0, max_excess=5.0, burstiness=0.0)
    assert large.expected_drops_per_key_frame() > small.expected_drops_per_key_frame()


def test_profile_validation():
    with pytest.raises(WorkloadError):
        TailProfile("bad", offset=0.1, scale=0.0, max_excess=2.0, burstiness=0.1)
    with pytest.raises(WorkloadError):
        TailProfile("bad", offset=0.1, scale=1.0, max_excess=2.0, burstiness=1.0)
    with pytest.raises(WorkloadError):
        TailProfile("bad", offset=3.0, scale=1.0, max_excess=2.0, burstiness=0.1)


def test_params_validation():
    with pytest.raises(WorkloadError):
        FrameTimeParams(refresh_hz=60, base_fraction=0.0)
    with pytest.raises(WorkloadError):
        FrameTimeParams(refresh_hz=60, key_prob=0.9)
    with pytest.raises(WorkloadError):
        FrameTimeParams(refresh_hz=60, ui_fraction=1.0)
    with pytest.raises(WorkloadError):
        FrameTimeParams(refresh_hz=60, base_fraction=0.5, body_max_fraction=0.4)


def test_inversion_key_prob_scales_with_target():
    low = params_for_target_fdps(1.0, 60, profile=MODERATE)
    high = params_for_target_fdps(4.0, 60, profile=MODERATE)
    assert high.key_prob > low.key_prob


def test_inversion_zero_target_zero_keys():
    params = params_for_target_fdps(0.0, 120)
    assert params.key_prob == 0.0


def test_inversion_caps_key_prob():
    params = params_for_target_fdps(1000.0, 60, profile=FLUCTUATION)
    assert params.key_prob <= 0.35


def test_all_named_profiles_registered():
    assert set(PROFILES) == {
        "scattered",
        "moderate",
        "skewed",
        "fluctuation",
        "fluctuation-deep",
    }


def test_fig1_shape_matches_annotations():
    model = fig1_model()
    period_ms = 1000 / 60
    times = [to_ms(w.total_ns) for w in model.generate(20000)]
    within_one = sum(1 for t in times if t <= period_ms) / len(times)
    beyond_two = sum(1 for t in times if t > 2 * period_ms) / len(times)
    assert 0.72 <= within_one <= 0.84  # paper: 78.3 %
    assert 0.025 <= beyond_two <= 0.08  # paper: ~5 %


def test_generate_rejects_negative_count():
    with pytest.raises(WorkloadError):
        make_model().generate(-1)


def test_skewed_profile_reaches_beyond_seven_periods():
    # QQMusic-like: long frames even 7 buffers fail to hide.
    assert SKEWED.offset + SKEWED.scale >= 5.0
    assert SKEWED.max_excess > 7.0
