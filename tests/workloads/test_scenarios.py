"""Tests for scenario specs and the registries."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.android_apps import APP_NAMES, FIG11_AVERAGE, app_scenario, app_scenarios
from repro.workloads.drivers import AnimationDriver, InteractionDriver
from repro.workloads.games import FIG14_AVERAGE, GAME_SPECS, game_target_fdps, record_game_trace
from repro.workloads.os_cases import (
    FIG12_VULKAN_AVG,
    FIG13_MATE40_AVG,
    FIG13_MATE60_AVG,
    MATE40_GLES_TARGETS,
    MATE60_GLES_TARGETS,
    MATE60_VULKAN_TARGETS,
    USE_CASES,
    os_case_scenarios,
    use_case,
)
from repro.workloads.scenarios import Scenario, targets_from_weights


def test_scenario_builds_animation_driver():
    scenario = Scenario(name="s1", description="", refresh_hz=60, target_vsync_fdps=1.0)
    assert isinstance(scenario.build_driver(), AnimationDriver)


def test_scenario_builds_interaction_driver():
    scenario = Scenario(
        name="s2", description="", refresh_hz=60, target_vsync_fdps=1.0,
        interactive=True, gesture="pinch",
    )
    driver = scenario.build_driver()
    assert isinstance(driver, InteractionDriver)


def test_scenario_run_index_changes_seed():
    scenario = Scenario(name="s3", description="", refresh_hz=60, target_vsync_fdps=1.0)
    a = scenario.build_driver(0)
    b = scenario.build_driver(1)
    assert a.name != b.name
    assert a._workloads != b._workloads


def test_unknown_profile_rejected():
    scenario = Scenario(
        name="s4", description="", refresh_hz=60, target_vsync_fdps=1.0, profile="nope"
    )
    with pytest.raises(WorkloadError):
        scenario.build_driver()


def test_unknown_gesture_rejected():
    scenario = Scenario(
        name="s5", description="", refresh_hz=60, target_vsync_fdps=1.0,
        interactive=True, gesture="tap-dance",
    )
    with pytest.raises(WorkloadError):
        scenario.build_driver()


def test_targets_from_weights_pins_mean():
    targets = targets_from_weights(["a", "b", "c"], [3.0, 2.0, 1.0], 4.0)
    assert sum(targets.values()) / 3 == pytest.approx(4.0)
    assert targets["a"] > targets["b"] > targets["c"]


def test_targets_from_weights_validation():
    with pytest.raises(WorkloadError):
        targets_from_weights(["a"], [1.0, 2.0], 1.0)
    with pytest.raises(WorkloadError):
        targets_from_weights([], [], 1.0)
    with pytest.raises(WorkloadError):
        targets_from_weights(["a"], [-1.0], 1.0)


# ----------------------------------------------------------------- OS cases
def test_table3_has_75_cases():
    assert len(USE_CASES) == 75


def test_abbreviations_unique():
    abbreviations = [case.abbreviation for case in USE_CASES]
    assert len(set(abbreviations)) == 75


def test_use_case_lookup():
    case = use_case("cls notif ctr")
    assert case.category == "Notification Center"
    with pytest.raises(WorkloadError):
        use_case("missing")


def test_figure_subsets_sizes():
    assert len(MATE60_VULKAN_TARGETS) == 29  # Fig 12
    assert len(MATE40_GLES_TARGETS) == 9  # Fig 13 left
    assert len(MATE60_GLES_TARGETS) == 20  # Fig 13 right


def test_figure_targets_average_to_paper():
    for targets, avg in (
        (MATE60_VULKAN_TARGETS, FIG12_VULKAN_AVG),
        (MATE40_GLES_TARGETS, FIG13_MATE40_AVG),
        (MATE60_GLES_TARGETS, FIG13_MATE60_AVG),
    ):
        assert sum(targets.values()) / len(targets) == pytest.approx(avg, rel=1e-6)


def test_os_case_scenarios_drop_prone_only():
    scenarios = os_case_scenarios("mate60-vulkan")
    assert len(scenarios) == 29
    assert scenarios[0].name == "cls notif ctr"  # figure order


def test_os_case_scenarios_all_75():
    scenarios = os_case_scenarios("mate60-gles", drop_prone_only=False)
    assert len(scenarios) == 75
    light = [s for s in scenarios if s.target_vsync_fdps == 0.0]
    assert len(light) == 55


def test_unknown_config_rejected():
    with pytest.raises(WorkloadError):
        os_case_scenarios("mate90-metal")


def test_all_figure_cases_exist_in_table3():
    known = {case.abbreviation for case in USE_CASES}
    for targets in (MATE60_VULKAN_TARGETS, MATE40_GLES_TARGETS, MATE60_GLES_TARGETS):
        assert set(targets) <= known


# ------------------------------------------------------------------ apps
def test_25_app_scenarios():
    scenarios = app_scenarios()
    assert len(scenarios) == 25
    assert scenarios[0].name == "Walmart"


def test_app_targets_average_to_paper():
    scenarios = app_scenarios()
    mean_target = sum(s.target_vsync_fdps for s in scenarios) / len(scenarios)
    assert mean_target == pytest.approx(FIG11_AVERAGE, rel=1e-6)


def test_qqmusic_is_skewed():
    assert app_scenario("QQMusic").profile == "skewed"
    assert app_scenario("Walmart").profile == "scattered"


def test_unknown_app_rejected():
    with pytest.raises(WorkloadError):
        app_scenario("MySpace")


# ------------------------------------------------------------------ games
def test_15_games():
    assert len(GAME_SPECS) == 15


def test_game_rates_match_figure_labels():
    rates = {spec.name: spec.refresh_hz for spec in GAME_SPECS}
    assert rates["Honor of Kings (UI)"] == 60
    assert rates["Identity V (UI)"] == 30
    assert rates["LTK"] == 90


def test_game_targets_average_to_paper():
    mean_target = sum(game_target_fdps(s.name) for s in GAME_SPECS) / len(GAME_SPECS)
    assert mean_target == pytest.approx(FIG14_AVERAGE, rel=1e-6)


def test_game_trace_has_gpu_time():
    trace = record_game_trace(GAME_SPECS[0])
    assert any(w.gpu_ns > 0 for w in trace.workloads)
    assert trace.refresh_hz == GAME_SPECS[0].refresh_hz


def test_game_trace_reproducible_per_run():
    a = record_game_trace(GAME_SPECS[1], run=0)
    b = record_game_trace(GAME_SPECS[1], run=0)
    c = record_game_trace(GAME_SPECS[1], run=1)
    assert a.workloads == b.workloads
    assert a.workloads != c.workloads


def test_unknown_game_rejected():
    with pytest.raises(WorkloadError):
        game_target_fdps("Pong")
