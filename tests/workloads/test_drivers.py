"""Tests for scenario drivers."""

import pytest

from repro.errors import WorkloadError
from repro.pipeline.frame import FrameCategory, FrameWorkload
from repro.units import ms
from repro.workloads.distributions import FrameTimeParams
from repro.workloads.drivers import AnimationDriver, InteractionDriver, TraceDriver
from repro.workloads.frametrace import FrameTrace
from repro.workloads.touch import SwipeGesture


def light_params(category=FrameCategory.DETERMINISTIC_ANIMATION):
    return FrameTimeParams(refresh_hz=60, key_prob=0.0, category=category)


# ------------------------------------------------------------ AnimationDriver
def test_animation_wants_frames_during_window():
    driver = AnimationDriver("a1", light_params(), duration_ns=ms(300))
    driver.begin(0)
    assert driver.wants_frame(ms(100), now=ms(100))
    assert not driver.wants_frame(ms(300), now=ms(300))


def test_animation_finished_after_span():
    driver = AnimationDriver("a2", light_params(), duration_ns=ms(300))
    driver.begin(0)
    assert not driver.finished(ms(299))
    assert driver.finished(ms(300))


def test_burst_gap_produces_no_frames():
    driver = AnimationDriver(
        "a3", light_params(), duration_ns=ms(200), bursts=2, burst_period_ns=ms(500)
    )
    driver.begin(0)
    assert driver.wants_frame(ms(100), now=ms(100))
    assert not driver.wants_frame(ms(300), now=ms(300))  # gap
    assert driver.wants_frame(ms(600), now=ms(600))  # second burst
    assert driver.finished(ms(700))


def test_burst_input_gating_blocks_prerender():
    driver = AnimationDriver(
        "a4", light_params(), duration_ns=ms(200), bursts=2, burst_period_ns=ms(500)
    )
    driver.begin(0)
    # Content time inside burst 2, but its input (t=500) hasn't happened yet.
    assert not driver.wants_frame(ms(520), now=ms(480))
    assert driver.wants_frame(ms(520), now=ms(500))


def test_animation_true_value_follows_curve_per_burst():
    driver = AnimationDriver(
        "a5", light_params(), duration_ns=ms(200), bursts=2, burst_period_ns=ms(500)
    )
    driver.begin(0)
    assert driver.true_value(0) == pytest.approx(0.0, abs=0.01)
    assert driver.true_value(ms(200)) == pytest.approx(1.0, abs=0.01)
    # Second burst restarts its own curve.
    assert driver.true_value(ms(500)) == pytest.approx(0.0, abs=0.01)


def test_animation_speed_zero_in_gap():
    driver = AnimationDriver(
        "a6", light_params(), duration_ns=ms(200), bursts=2, burst_period_ns=ms(500)
    )
    driver.begin(0)
    assert driver.animation_speed(ms(350)) == 0.0
    assert driver.animation_speed(ms(100)) > 0.0


def test_workloads_deterministic_per_index():
    a = AnimationDriver("same", light_params(), duration_ns=ms(300))
    b = AnimationDriver("same", light_params(), duration_ns=ms(300))
    assert a.make_workload(5, 0) == b.make_workload(5, 0)


def test_workload_index_clamps_beyond_trace():
    driver = AnimationDriver("a7", light_params(), duration_ns=ms(100))
    big = driver.make_workload(10_000, 0)
    assert isinstance(big, FrameWorkload)


def test_category_weights_mixture():
    driver = AnimationDriver(
        "a8",
        light_params(),
        duration_ns=ms(2000),
        category_weights={
            FrameCategory.DETERMINISTIC_ANIMATION: 0.8,
            FrameCategory.REALTIME: 0.2,
        },
    )
    categories = [driver.frame_category(i) for i in range(120)]
    realtime = sum(1 for c in categories if c is FrameCategory.REALTIME)
    assert 5 <= realtime <= 50


def test_animation_validation():
    with pytest.raises(WorkloadError):
        AnimationDriver("bad", light_params(), duration_ns=0)
    with pytest.raises(WorkloadError):
        AnimationDriver("bad", light_params(), duration_ns=ms(100), bursts=0)
    with pytest.raises(WorkloadError):
        AnimationDriver(
            "bad", light_params(), duration_ns=ms(200), burst_period_ns=ms(100)
        )


# ---------------------------------------------------------- InteractionDriver
def make_interaction(name="i1"):
    def factory(start):
        return SwipeGesture(start, ms(300), name=name)

    return InteractionDriver(name, light_params(), factory)


def test_interaction_requires_begin():
    driver = make_interaction()
    with pytest.raises(WorkloadError):
        driver.wants_frame(0, 0)


def test_interaction_forces_category():
    driver = make_interaction()
    assert driver.params.category is FrameCategory.PREDICTABLE_INTERACTION
    assert driver.frame_category(0) is FrameCategory.PREDICTABLE_INTERACTION


def test_interaction_window_follows_gesture():
    driver = make_interaction("i2")
    driver.begin(ms(50))
    assert driver.wants_frame(ms(100), now=ms(100))
    assert not driver.wants_frame(ms(360), now=ms(360))
    assert driver.finished(ms(350))


def test_interaction_observe_input_causal():
    driver = make_interaction("i3")
    driver.begin(0)
    samples = driver.observe_input(ms(120))
    assert samples
    assert all(t <= ms(120) for t, _ in samples)


# ---------------------------------------------------------------- TraceDriver
def make_trace(count=30, refresh_hz=60):
    workloads = [FrameWorkload(ui_ns=1_000_000, render_ns=2_000_000) for _ in range(count)]
    return FrameTrace(name="game", refresh_hz=refresh_hz, workloads=workloads)


def test_trace_driver_duration():
    driver = TraceDriver(make_trace(count=30, refresh_hz=60))
    driver.begin(0)
    assert abs(driver.duration_ns - ms(500)) < 100  # 30 x 16.666667 ms
    assert driver.wants_frame(ms(499), now=ms(499))
    assert driver.finished(driver.duration_ns)


def test_trace_driver_replays_in_order():
    trace = make_trace(count=3)
    driver = TraceDriver(trace)
    driver.begin(0)
    assert driver.make_workload(0, 0) == trace[0]
    assert driver.make_workload(2, 0) == trace[2]
    assert driver.make_workload(9, 0) == trace[2]  # clamps


def test_trace_driver_loop_mode():
    trace = make_trace(count=3)
    driver = TraceDriver(trace, loop=True)
    driver.begin(0)
    assert driver.make_workload(4, 0) == trace[1]


def test_trace_driver_category_override():
    driver = TraceDriver(make_trace(), category=FrameCategory.REALTIME)
    assert driver.make_workload(0, 0).category is FrameCategory.REALTIME
