"""Tests for the Fig 4 graphics-feature catalog."""

import pytest

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng
from repro.units import ms
from repro.workloads.features import (
    FEATURES,
    OS_GENERATIONS,
    CostClass,
    EffectComposer,
    cumulative_feature_count,
    feature,
    features_in,
)


def test_catalog_names_unique():
    names = [f.name for f in FEATURES]
    assert len(set(names)) == len(names)


def test_feature_lookup():
    blur = feature("Gaussian Blur")
    assert blur.cost is CostClass.HEAVY
    assert blur.os_release == "OH 4.0"


def test_unknown_feature_raises():
    with pytest.raises(WorkloadError):
        feature("Ray Tracing")


def test_every_generation_has_features():
    for generation in OS_GENERATIONS:
        assert features_in(generation)


def test_unknown_generation_raises():
    with pytest.raises(WorkloadError):
        features_in("Android 99")


def test_heavy_share_grows_within_lineages():
    rows = cumulative_feature_count()
    oh = [heavy for gen, _, heavy in rows if gen.startswith("OH")]
    android = [heavy for gen, _, heavy in rows if gen.startswith("Android")]
    assert oh == sorted(oh)
    assert android == sorted(android)
    assert oh[-1] > oh[0]


def test_composer_key_frame_cost_scales_with_stack():
    light = EffectComposer(["Transparency"], rng=SeededRng(1))
    heavy = EffectComposer(
        ["Gaussian Blur", "Particle Effect", "Dynamic Lighting"], rng=SeededRng(1)
    )
    light_cost = sum(light.key_frame_cost_ns() for _ in range(100)) / 100
    heavy_cost = sum(heavy.key_frame_cost_ns() for _ in range(100)) / 100
    assert heavy_cost > 5 * light_cost


def test_heavy_key_frames_over_a_millisecond():
    # Fig 4: darker effects mean key frames "usually over 1 ms".
    composer = EffectComposer(["Gaussian Blur"], rng=SeededRng(2))
    costs = [composer.key_frame_cost_ns() for _ in range(200)]
    over_1ms = sum(1 for c in costs if c > ms(1))
    assert over_1ms > 180


def test_cache_reuse_discounts_steady_frames():
    composer = EffectComposer(
        ["Gaussian Blur", "Glass Material"], rng=SeededRng(3),
        cache_reuse_probability=0.8,
    )
    key = sum(composer.key_frame_cost_ns() for _ in range(200)) / 200
    steady = sum(composer.steady_frame_cost_ns() for _ in range(200)) / 200
    assert steady < 0.5 * key


def test_composer_validation():
    with pytest.raises(WorkloadError):
        EffectComposer([])
    with pytest.raises(WorkloadError):
        EffectComposer(["Transparency"], cache_reuse_probability=1.5)


def test_composer_deterministic_by_stack():
    a = EffectComposer(["Bokeh", "Parallax"])
    b = EffectComposer(["Parallax", "Bokeh"])  # order-insensitive seeding
    assert a.key_frame_cost_ns() == b.key_frame_cost_ns()
