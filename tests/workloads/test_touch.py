"""Tests for touch-input synthesis."""

import pytest

from repro.errors import WorkloadError
from repro.units import ms
from repro.workloads.touch import FlingGesture, PinchGesture, SwipeGesture


def test_samples_at_digitizer_rate():
    gesture = SwipeGesture(0, ms(100), sample_rate_hz=120, name="t1")
    # 100 ms at 120 Hz: samples at 0, 8.3, ... 100 -> 13 samples.
    assert len(gesture.samples) == 13


def test_samples_until_respects_causality():
    gesture = SwipeGesture(0, ms(100), name="t2")
    visible = gesture.samples_until(ms(50))
    assert visible
    assert all(t <= ms(50) for t, _ in visible)
    assert len(visible) < len(gesture.samples)


def test_value_clamped_outside_gesture():
    gesture = SwipeGesture(ms(100), ms(200), distance=1.0, name="t3")
    assert gesture.value_at(0) == gesture.value_at(ms(100))
    assert gesture.value_at(ms(500)) == gesture.value_at(ms(300))


def test_swipe_monotone():
    gesture = SwipeGesture(0, ms(300), distance=1.0, name="t4")
    values = [gesture.value_at(ms(300 * i / 20)) for i in range(21)]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(1.0, abs=0.01)


def test_pinch_moves_between_distances():
    gesture = PinchGesture(0, ms(400), start_distance=0.2, end_distance=0.8, name="t5")
    assert gesture.value_at(0) == pytest.approx(0.2, abs=0.01)
    assert gesture.value_at(ms(400)) == pytest.approx(0.8, abs=0.01)


def test_pinch_requires_distance_change():
    with pytest.raises(WorkloadError):
        PinchGesture(0, ms(100), start_distance=0.5, end_distance=0.5)


def test_fling_decelerates():
    gesture = FlingGesture(0, ms(500), distance=1.0, rate=3.0, name="t6")
    early = gesture.speed_at(ms(50))
    late = gesture.speed_at(ms(450))
    assert early > late


def test_noise_perturbs_samples_not_truth():
    clean = PinchGesture(0, ms(200), noise=0.0, name="t7")
    noisy = PinchGesture(0, ms(200), noise=0.01, name="t7")
    assert clean.value_at(ms(100)) == noisy.value_at(ms(100))
    assert any(
        abs(a.value - b.value) > 1e-6 for a, b in zip(clean.samples, noisy.samples)
    )


def test_same_name_reproducible():
    a = PinchGesture(0, ms(200), noise=0.01, name="seeded")
    b = PinchGesture(0, ms(200), noise=0.01, name="seeded")
    assert [s.value for s in a.samples] == [s.value for s in b.samples]


def test_duration_validation():
    with pytest.raises(WorkloadError):
        SwipeGesture(0, 0)
    with pytest.raises(WorkloadError):
        SwipeGesture(0, ms(100), sample_rate_hz=0)


def test_speed_positive_during_motion():
    gesture = SwipeGesture(0, ms(300), name="t8")
    assert gesture.speed_at(ms(150)) > 0
