"""Tests for the two-stage render pipeline."""

from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.frame import FrameRecord, FrameWorkload
from repro.pipeline.stages import RenderPipeline
from repro.sim.engine import Simulator


def make_pipeline(capacity=3):
    sim = Simulator()
    queue = BufferQueue(capacity=capacity, buffer_bytes=1024)
    return sim, queue, RenderPipeline(sim, queue)


def make_frame(frame_id=0, ui=100, render=200, gpu=0, trigger=0):
    return FrameRecord(
        frame_id=frame_id,
        workload=FrameWorkload(ui_ns=ui, render_ns=render, gpu_ns=gpu),
        trigger_time=trigger,
        content_timestamp=trigger,
    )


def test_frame_flows_ui_then_render_then_queue():
    sim, queue, pipeline = make_pipeline()
    frame = make_frame(ui=100, render=200)
    pipeline.start_frame(frame)
    sim.run()
    assert frame.ui_start == 0
    assert frame.ui_end == 100
    assert frame.render_start == 100
    assert frame.render_end == 300
    assert frame.queued_time == 300
    assert queue.queued_depth == 1


def test_ui_complete_hook():
    sim, _, pipeline = make_pipeline()
    seen = []
    pipeline.on_ui_complete.append(lambda f: seen.append(f.frame_id))
    pipeline.start_frame(make_frame(frame_id=5))
    sim.run()
    assert seen == [5]


def test_frame_queued_hook():
    sim, _, pipeline = make_pipeline()
    seen = []
    pipeline.on_frame_queued.append(lambda f: seen.append(f.frame_id))
    pipeline.start_frame(make_frame(frame_id=9))
    sim.run()
    assert seen == [9]


def test_pipelining_ui_overlaps_render():
    sim, _, pipeline = make_pipeline()
    first = make_frame(frame_id=0, ui=100, render=400)
    second = make_frame(frame_id=1, ui=100, render=100)
    pipeline.start_frame(first)
    pipeline.on_ui_complete.append(
        lambda f: pipeline.start_frame(second) if f.frame_id == 0 else None
    )
    sim.run()
    # Second frame's UI ran while the first was still rendering.
    assert second.ui_start == 100
    assert second.ui_end == 200
    assert first.render_end == 500
    # Render stage is serialized FIFO.
    assert second.render_start == 500


def test_gpu_stage_defers_queueing():
    sim, queue, pipeline = make_pipeline()
    frame = make_frame(ui=100, render=100, gpu=300)
    pipeline.start_frame(frame)
    sim.run()
    assert frame.render_end == 200
    assert frame.gpu_end == 500
    assert frame.queued_time == 500


def test_render_thread_freed_during_gpu():
    sim, _, pipeline = make_pipeline(capacity=4)
    first = make_frame(frame_id=0, ui=10, render=100, gpu=1000)
    second = make_frame(frame_id=1, ui=10, render=100, gpu=0)
    pipeline.start_frame(first)
    pipeline.on_ui_complete.append(
        lambda f: pipeline.start_frame(second) if f.frame_id == 0 else None
    )
    sim.run()
    # Second frame's CPU render ran while first frame's GPU work finished.
    assert second.render_start < first.gpu_end


def test_buffer_backpressure_stalls_render():
    sim, queue, pipeline = make_pipeline(capacity=2)
    frames = [make_frame(frame_id=i, ui=10, render=50) for i in range(3)]
    pipeline.start_frame(frames[0])
    pipeline.start_frame(frames[1])
    pipeline.start_frame(frames[2])
    sim.run()
    # Only two buffers: the third frame waits until a slot frees.
    assert frames[0].queued_time is not None
    assert frames[1].queued_time is not None
    assert frames[2].queued_time is None
    assert pipeline.frames_in_flight == 1

    # Consume buffers some time later: the stalled frame proceeds and
    # records how long backpressure held it.
    def consume():
        queue.acquire()
        queue.acquire()  # frees the first front

    sim.schedule_at(sim.now + 500, consume)
    sim.run()
    assert frames[2].queued_time is not None
    assert frames[2].buffer_wait_ns > 0


def test_render_backlog_counts_active_and_waiting():
    sim, _, pipeline = make_pipeline(capacity=4)
    slow = make_frame(frame_id=0, ui=10, render=1000)
    fast = make_frame(frame_id=1, ui=10, render=10)
    pipeline.start_frame(slow)
    pipeline.start_frame(fast)
    sim.run(until=500)
    assert pipeline.render_backlog == 2


def test_frames_in_flight_decrements_on_queue():
    sim, _, pipeline = make_pipeline()
    pipeline.start_frame(make_frame())
    assert pipeline.frames_in_flight == 1
    sim.run()
    assert pipeline.frames_in_flight == 0


def test_buffer_slot_recorded():
    sim, _, pipeline = make_pipeline()
    frame = make_frame()
    pipeline.start_frame(frame)
    sim.run()
    assert frame.buffer_slot is not None


def test_render_rate_stamped_on_buffer():
    sim, queue, pipeline = make_pipeline()
    pipeline.render_rate_hz = 90
    frame = make_frame()
    pipeline.start_frame(frame)
    sim.run()
    assert frame.render_rate_hz == 90
    assert queue.peek_queued().render_rate_hz == 90
