"""Tests for the compositor's latch/jank behaviour."""

from repro.display.hal import ScreenHAL
from repro.display.vsync import HWVsyncSource
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.compositor import Compositor
from repro.pipeline.frame import FrameRecord, FrameWorkload
from repro.sim.engine import Simulator

PERIOD = 100


class Harness:
    def __init__(self, capacity=3, expects=lambda: False):
        self.sim = Simulator()
        self.source = HWVsyncSource(self.sim, PERIOD)
        self.queue = BufferQueue(capacity=capacity, buffer_bytes=1024)
        self.hal = ScreenHAL()
        self.frames = {}
        self.compositor = Compositor(
            self.source, self.queue, self.hal, self.frames.get, expects
        )

    def queue_frame(self, frame_id, queued_at):
        frame = FrameRecord(
            frame_id=frame_id,
            workload=FrameWorkload(ui_ns=1, render_ns=1),
            trigger_time=queued_at,
            content_timestamp=queued_at,
        )
        frame.queued_time = queued_at
        self.frames[frame_id] = frame
        buffer = self.queue.try_dequeue()
        self.queue.queue(buffer, frame_id=frame_id, content_timestamp=queued_at,
                         render_rate_hz=60, now=queued_at)
        return frame


def test_latches_queued_buffer_on_tick():
    h = Harness()
    frame = h.queue_frame(0, queued_at=0)
    h.source.start(first_tick_at=PERIOD)
    h.sim.run(until=PERIOD)
    assert frame.latch_time == PERIOD
    assert frame.present_time == 2 * PERIOD
    assert h.hal.presented_count == 1


def test_buffer_queued_on_edge_misses_that_latch():
    h = Harness()
    frame = h.queue_frame(0, queued_at=PERIOD)  # exactly on the edge
    h.source.start(first_tick_at=PERIOD)
    h.sim.run(until=2 * PERIOD)
    assert frame.latch_time == 2 * PERIOD


def test_no_drop_when_idle():
    h = Harness(expects=lambda: False)
    h.source.start()
    h.sim.run(until=5 * PERIOD)
    assert h.compositor.drop_count == 0


def test_drop_when_content_expected():
    h = Harness(expects=lambda: True)
    h.source.start()
    h.sim.run(until=3 * PERIOD)
    assert h.compositor.drop_count == 4  # ticks at 0,100,200,300


def test_drop_records_queue_state():
    h = Harness(expects=lambda: True)
    h.source.start()
    h.sim.run(until=0)
    drop = h.compositor.drops[0]
    assert drop.vsync_index == 0
    assert drop.queued_depth == 0


def test_late_buffer_counts_as_drop_even_without_expectation():
    # A buffer queued on the edge means the producer owed content.
    h = Harness(expects=lambda: False)
    h.queue_frame(0, queued_at=PERIOD)
    h.source.start(first_tick_at=PERIOD)
    h.sim.run(until=PERIOD)
    assert h.compositor.drop_count == 1


def test_after_tick_hooks_run():
    h = Harness()
    seen = []
    h.compositor.after_tick.append(lambda t, i: seen.append((t, i)))
    h.source.start()
    h.sim.run(until=2 * PERIOD)
    assert seen == [(0, 0), (PERIOD, 1), (2 * PERIOD, 2)]


def test_fifo_latch_order():
    h = Harness(capacity=4)
    first = h.queue_frame(0, queued_at=0)
    second = h.queue_frame(1, queued_at=10)
    h.source.start(first_tick_at=PERIOD)
    h.sim.run(until=2 * PERIOD)
    assert first.latch_time == PERIOD
    assert second.latch_time == 2 * PERIOD


def test_present_record_fields():
    h = Harness()
    h.queue_frame(3, queued_at=0)
    h.source.start(first_tick_at=PERIOD)
    h.sim.run(until=PERIOD)
    record = h.hal.presents[0]
    assert record.frame_id == 3
    assert record.vsync_index == 0
    assert record.refresh_period == PERIOD
    assert record.present_time == 2 * PERIOD
