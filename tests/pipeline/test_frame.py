"""Tests for frame records and workloads."""

import pytest

from repro.pipeline.frame import FrameCategory, FrameRecord, FrameWorkload


def test_workload_total():
    workload = FrameWorkload(ui_ns=100, render_ns=200, gpu_ns=50)
    assert workload.total_ns == 350


def test_workload_rejects_negative():
    with pytest.raises(ValueError):
        FrameWorkload(ui_ns=-1, render_ns=0)


def test_category_decouplable():
    assert FrameCategory.DETERMINISTIC_ANIMATION.decouplable
    assert FrameCategory.PREDICTABLE_INTERACTION.decouplable
    assert not FrameCategory.REALTIME.decouplable


def test_category_needs_prediction():
    assert FrameCategory.PREDICTABLE_INTERACTION.needs_input_prediction
    assert not FrameCategory.DETERMINISTIC_ANIMATION.needs_input_prediction


def make_frame(**kwargs):
    defaults = dict(
        frame_id=0,
        workload=FrameWorkload(ui_ns=10, render_ns=20),
        trigger_time=100,
        content_timestamp=100,
    )
    defaults.update(kwargs)
    return FrameRecord(**defaults)


def test_presented_flag():
    frame = make_frame()
    assert not frame.presented
    frame.present_time = 500
    assert frame.presented


def test_queue_wait():
    frame = make_frame()
    frame.queued_time = 200
    frame.latch_time = 350
    assert frame.queue_wait_ns == 150


def test_queue_wait_zero_before_latch():
    frame = make_frame()
    frame.queued_time = 200
    assert frame.queue_wait_ns == 0


def test_execution_span():
    frame = make_frame(trigger_time=100)
    frame.queued_time = 180
    assert frame.execution_ns == 80


def test_latency_vsync_anchor_is_trigger():
    frame = make_frame(trigger_time=100, content_timestamp=100, decoupled=False)
    frame.present_time = 400
    assert frame.latency_ns == 300


def test_latency_decoupled_anchor_is_dtimestamp():
    # A decoupled frame triggered at 100 with a (future) D-Timestamp of 250.
    frame = make_frame(trigger_time=100, content_timestamp=250, decoupled=True)
    frame.present_time = 500
    assert frame.latency_ns == 250


def test_latency_zero_when_never_presented():
    assert make_frame().latency_ns == 0
