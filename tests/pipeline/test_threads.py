"""Tests for simulated CPU threads."""

import pytest

from repro.errors import PipelineError
from repro.pipeline.threads import SimThread
from repro.sim.engine import Simulator


def test_task_completes_after_duration():
    sim = Simulator()
    thread = SimThread(sim, "ui")
    done = []
    thread.submit(100, on_complete=lambda t: done.append(t))
    sim.run()
    assert done == [100]


def test_tasks_serialize_fifo():
    sim = Simulator()
    thread = SimThread(sim, "render")
    order = []
    thread.submit(100, on_start=lambda t: order.append(("a", t)))
    thread.submit(50, on_start=lambda t: order.append(("b", t)))
    sim.run()
    assert order == [("a", 0), ("b", 100)]


def test_submit_while_busy_queues_behind():
    sim = Simulator()
    thread = SimThread(sim, "t")
    ends = []
    thread.submit(100, on_complete=lambda t: thread.submit(10, on_complete=lambda u: ends.append(u)))
    sim.run()
    assert ends == [110]


def test_idle_reflects_queue():
    sim = Simulator()
    thread = SimThread(sim, "t")
    assert thread.idle
    thread.submit(100)
    assert not thread.idle
    sim.run(until=100)
    assert thread.idle


def test_busy_until_accumulates():
    sim = Simulator()
    thread = SimThread(sim, "t")
    thread.submit(100)
    thread.submit(50)
    assert thread.busy_until == 150


def test_zero_duration_task():
    sim = Simulator()
    thread = SimThread(sim, "t")
    done = []
    thread.submit(0, on_complete=lambda t: done.append(t))
    sim.run()
    assert done == [0]


def test_negative_duration_rejected():
    sim = Simulator()
    with pytest.raises(PipelineError):
        SimThread(sim, "t").submit(-1)


def test_total_busy_tracks_work():
    sim = Simulator()
    thread = SimThread(sim, "t")
    thread.submit(100)
    thread.submit(200)
    sim.run()
    assert thread.total_busy_ns == 300
    assert thread.tasks_executed == 2


def test_utilization():
    sim = Simulator()
    thread = SimThread(sim, "t")
    thread.submit(250)
    sim.run()
    assert thread.utilization(1000) == 0.25
    with pytest.raises(PipelineError):
        thread.utilization(0)


def test_gap_between_tasks_starts_fresh():
    sim = Simulator()
    thread = SimThread(sim, "t")
    starts = []
    thread.submit(10, on_start=lambda t: starts.append(t))
    sim.run()
    sim.schedule_at(500, lambda: thread.submit(10, on_start=lambda t: starts.append(t)))
    sim.run()
    assert starts == [0, 500]
