"""The unified scheduler construction/run contract (API redesign).

Every scheduler shares: positional ``(driver, device)``, one
positional-or-keyword architecture knob, keyword-only
``offsets``/``sim``/``telemetry``, explicit parameters (no ``*args`` /
``**kwargs``), and a single inherited ``run(start_time=0, horizon=None)``.
"""

import inspect

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.pipeline.scheduler_base import SchedulerBase
from repro.testing import light_params, make_animation
from repro.vsync.oh_scheduler import OpenHarmonyVSyncScheduler
from repro.vsync.scheduler import VSyncScheduler

SCHEDULERS = [VSyncScheduler, OpenHarmonyVSyncScheduler, DVSyncScheduler]


@pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
def test_init_has_no_var_args(scheduler_cls):
    signature = inspect.signature(scheduler_cls.__init__)
    kinds = {p.kind for p in signature.parameters.values()}
    assert inspect.Parameter.VAR_POSITIONAL not in kinds
    assert inspect.Parameter.VAR_KEYWORD not in kinds


@pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
def test_offsets_sim_telemetry_are_keyword_only(scheduler_cls):
    signature = inspect.signature(scheduler_cls.__init__)
    for name in ("offsets", "sim", "telemetry"):
        parameter = signature.parameters[name]
        assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, name
        assert parameter.default is None


@pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
def test_run_is_inherited_not_overridden(scheduler_cls):
    assert "run" not in scheduler_cls.__dict__
    assert scheduler_cls.run is SchedulerBase.run


def test_run_signature():
    signature = inspect.signature(SchedulerBase.run)
    parameters = list(signature.parameters)
    assert parameters == ["self", "start_time", "horizon"]
    assert signature.parameters["start_time"].default == 0
    assert signature.parameters["horizon"].default is None


def test_vsync_positional_contract(pixel5):
    driver = make_animation(light_params(), "contract-vs")
    scheduler = VSyncScheduler(driver, pixel5, 3)
    assert scheduler.buffer_count == 3


def test_dvsync_positional_contract(pixel5):
    driver = make_animation(light_params(), "contract-dv")
    scheduler = DVSyncScheduler(driver, pixel5, DVSyncConfig(buffer_count=4))
    assert scheduler.buffer_count == 4


def test_dvsync_finalize_annotates_extra(pixel5):
    driver = make_animation(light_params(), "contract-extra")
    result = DVSyncScheduler(
        driver, pixel5, DVSyncConfig(buffer_count=4)
    ).run()
    assert "fpe_triggers_accumulation" in result.extra
    assert "dtv_calibrations" in result.extra


def test_dvsync_config_is_keyword_only():
    with pytest.raises(TypeError):
        DVSyncConfig(4)  # options must be spelled out
    assert DVSyncConfig(buffer_count=4).buffer_count == 4


def test_run_horizon_is_keyword_friendly(pixel5):
    driver = make_animation(light_params(), "contract-run")
    result = VSyncScheduler(driver, pixel5).run(start_time=0, horizon=10_000_000)
    assert result.end_time <= 10_000_000
