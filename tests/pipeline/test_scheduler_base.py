"""Tests for the shared scheduler machinery and RunResult."""

import pytest

from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.testing import light_params, make_animation, run_vsync
from repro.units import hz_to_period
from repro.vsync.scheduler import VSyncScheduler

PERIOD = hz_to_period(60)


def test_buffer_count_defaults_to_device():
    driver = make_animation(light_params(), "base-default")
    scheduler = VSyncScheduler(driver, PIXEL_5)
    assert scheduler.buffer_count == PIXEL_5.default_buffer_count


def test_buffer_count_minimum():
    driver = make_animation(light_params(), "base-min")
    with pytest.raises(ConfigurationError):
        VSyncScheduler(driver, PIXEL_5, buffer_count=1)


def test_run_result_fields_populated():
    result = run_vsync(make_animation(light_params(), "base-fields"))
    assert result.scheduler == "vsync"
    assert result.device is PIXEL_5
    assert result.buffer_count == 3
    assert result.ui_busy_ns > 0
    assert result.render_busy_ns > 0
    assert result.gpu_busy_ns == 0
    assert result.scheduler_overhead_ns == 0


def test_presented_frames_subset_of_frames():
    result = run_vsync(make_animation(light_params(), "base-presented"))
    assert set(f.frame_id for f in result.presented_frames) <= set(
        f.frame_id for f in result.frames
    )


def test_display_span_matches_presents():
    result = run_vsync(make_animation(light_params(), "base-span"))
    first = result.presents[0].present_time
    last = result.presents[-1].present_time
    assert result.display_span_ns == last - first + PERIOD


def test_display_span_zero_without_presents():
    from repro.pipeline.scheduler_base import RunResult

    empty = RunResult(
        scheduler="vsync", scenario="none", device=PIXEL_5, buffer_count=3,
        frames=[], drops=[], presents=[], start_time=0, end_time=0,
        ui_busy_ns=0, render_busy_ns=0, gpu_busy_ns=0,
    )
    assert empty.display_span_ns == 0
    assert empty.first_present_time is None
    assert empty.effective_drops == []


def test_effective_drops_exclude_pipeline_fill():
    import dataclasses

    driver = make_animation(light_params(), "base-fill", duration_ms=500)
    # Make the very first frame heavy: its janks happen before any content
    # is on screen and industrial counters ignore them.
    workload = driver._workloads[0]
    driver._workloads[0] = dataclasses.replace(workload, render_ns=int(2.5 * PERIOD))
    result = run_vsync(driver)
    assert all(
        d.time >= result.presents[0].present_time - PERIOD for d in result.effective_drops
    )


def test_scenario_name_recorded():
    result = run_vsync(make_animation(light_params(), "base-name"))
    assert result.scenario == "base-name"


def test_frames_map_consistent():
    driver = make_animation(light_params(), "base-map")
    scheduler = VSyncScheduler(driver, PIXEL_5, buffer_count=3)
    scheduler.run()
    for frame in scheduler.frames:
        assert scheduler._frame_by_id(frame.frame_id) is frame
