"""Tests for the OpenHarmony render-service VSync flavor."""

import dataclasses

import pytest

from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.display.vsync import VsyncOffsets
from repro.testing import light_params, make_animation
from repro.units import hz_to_period
from repro.vsync import OpenHarmonyVSyncScheduler, VSyncScheduler, default_rs_offset

PERIOD_120 = hz_to_period(120)


def run_oh(driver, device=MATE_60_PRO, **kwargs):
    scheduler = OpenHarmonyVSyncScheduler(driver, device, **kwargs)
    return scheduler.run(), scheduler


def test_default_rs_offset_within_period():
    assert 0 < default_rs_offset(MATE_60_PRO) < MATE_60_PRO.vsync_period


def test_default_buffer_count_is_four():
    _, scheduler = run_oh(make_animation(light_params(refresh_hz=120), "oh-bufs", duration_ms=200))
    assert scheduler.buffer_count == 4  # OpenHarmony render-service default


def test_two_period_floor_when_ui_beats_rs_edge():
    driver = make_animation(light_params(refresh_hz=120), "oh-floor", duration_ms=400)
    result, _ = run_oh(driver)
    assert len(result.effective_drops) == 0
    latencies = [f.latency_ns for f in result.presented_frames]
    assert all(abs(lat - 2 * PERIOD_120) <= 2 for lat in latencies)


def test_render_starts_at_rs_edge_not_ui_completion():
    driver = make_animation(light_params(refresh_hz=120), "oh-edge", duration_ms=300)
    result, scheduler = run_oh(driver)
    rs_offset = scheduler.offsets.rs_offset
    for frame in result.frames:
        # Render waits for the VSync-rs edge of its period (or later if the
        # render thread was busy); it never starts before the edge.
        phase = frame.render_start % PERIOD_120
        assert phase >= rs_offset - 2 or frame.render_start > frame.ui_end


def test_ui_missing_rs_edge_slips_a_period():
    driver = make_animation(light_params(refresh_hz=120), "oh-slip", duration_ms=400)
    # One UI stage longer than the rs offset: its record misses the edge.
    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(
        workload, ui_ns=int(PERIOD_120 * 0.8)
    )
    result, scheduler = run_oh(driver)
    assert scheduler.rs_slips >= 1


def test_behaves_like_android_flavor_on_light_loads():
    oh_driver = make_animation(light_params(refresh_hz=120), "oh-cmp", duration_ms=400)
    android_driver = make_animation(light_params(refresh_hz=120), "oh-cmp", duration_ms=400)
    oh_result, _ = run_oh(oh_driver)
    android_result = VSyncScheduler(android_driver, MATE_60_PRO, buffer_count=4).run()
    assert len(oh_result.presents) == len(android_result.presents)
    assert len(oh_result.effective_drops) == len(android_result.effective_drops) == 0


def test_custom_offsets_respected():
    offsets = VsyncOffsets(rs_offset=1_000_000)
    driver = make_animation(light_params(refresh_hz=120), "oh-custom", duration_ms=200)
    _, scheduler = run_oh(driver, offsets=offsets)
    assert scheduler.rs_channel.offset == 1_000_000


def test_works_on_60hz_device_too():
    driver = make_animation(light_params(), "oh-60", duration_ms=400)
    result, _ = run_oh(driver, device=PIXEL_5, buffer_count=3)
    assert len(result.effective_drops) == 0
    assert all(f.presented for f in result.frames)
