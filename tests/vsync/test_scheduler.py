"""Tests for the baseline VSync scheduler."""

from repro.testing import make_animation

from repro.display.device import PIXEL_5
from repro.units import hz_to_period, ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams

PERIOD = hz_to_period(60)


def run_light(duration_ms=500.0, bursts=1, burst_period_ms=None):
    params = FrameTimeParams(refresh_hz=60, key_prob=0.0)
    driver = make_animation(
        params, "vsync-light", duration_ms=duration_ms, bursts=bursts,
        burst_period_ms=burst_period_ms,
    )
    scheduler = VSyncScheduler(driver, PIXEL_5, buffer_count=3)
    return scheduler.run(), scheduler


def test_light_workload_no_drops():
    result, _ = run_light()
    assert len(result.effective_drops) == 0


def test_frame_per_tick_at_full_rate():
    result, _ = run_light(duration_ms=500)
    # 500 ms at 60 Hz is 30 frames (first tick at t=0).
    assert len(result.frames) == 30


def test_content_timestamps_are_tick_aligned():
    result, _ = run_light()
    for frame in result.frames:
        assert frame.content_timestamp % PERIOD in (0, 1)  # rounding of period
        assert frame.trigger_time == frame.content_timestamp
        assert not frame.decoupled


def test_latency_floor_is_two_periods():
    result, _ = run_light()
    # Steady frames: trigger at tick t, latch t+1, present t+2.
    latencies = [f.latency_ns for f in result.presented_frames]
    assert all(abs(lat - 2 * PERIOD) <= 2 for lat in latencies)


def test_all_frames_presented():
    result, _ = run_light()
    assert all(f.presented for f in result.frames)


def test_long_render_frame_causes_drops():
    params = FrameTimeParams(refresh_hz=60, key_prob=0.0)
    driver = make_animation(params, "vsync-longframe", duration_ms=500)
    # Inject one frame with a render time of ~2.5 periods.
    import dataclasses

    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(
        workload, render_ns=int(2.5 * PERIOD)
    )
    result = VSyncScheduler(driver, PIXEL_5, buffer_count=3).run()
    assert len(result.effective_drops) >= 1


def test_ui_heavy_frame_skips_ticks():
    params = FrameTimeParams(refresh_hz=60, key_prob=0.0)
    driver = make_animation(params, "vsync-uiheavy", duration_ms=500)
    import dataclasses

    workload = driver._workloads[5]
    driver._workloads[5] = dataclasses.replace(workload, ui_ns=int(2.2 * PERIOD))
    scheduler = VSyncScheduler(driver, PIXEL_5, buffer_count=3)
    scheduler.run()
    assert scheduler.skipped_ticks >= 1


def test_bursts_produce_idle_gaps_without_drops():
    result, scheduler = run_light(duration_ms=200, bursts=3, burst_period_ms=400)
    assert len(result.effective_drops) == 0
    # Gaps: frames only during the 200 ms animation of each 400 ms window.
    for frame in result.frames:
        offset = frame.content_timestamp % ms(400)
        assert offset < ms(200)


def test_run_terminates_and_stops_vsync():
    result, scheduler = run_light()
    assert not scheduler.hw_vsync.running
    assert result.end_time >= ms(500)


def test_display_span_close_to_animation_length():
    result, _ = run_light(duration_ms=600)
    assert abs(result.display_span_ns - ms(600)) < 3 * PERIOD


def test_deterministic_across_runs():
    first, _ = run_light()
    second, _ = run_light()
    assert [f.queued_time for f in first.frames] == [f.queued_time for f in second.frames]
