"""Tests for latency metrics."""

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.metrics.latency import (
    LatencySummary,
    content_staleness_ms,
    frame_latencies_ms,
    latency_summary,
    queue_wait_ms,
    touch_lag_pixels,
)
from repro.testing import light_params, make_animation, run_dvsync, run_vsync

PERIOD_MS = 1000 / 60


def test_vsync_latency_floor_two_periods():
    result = run_vsync(make_animation(light_params(), "lat-clean"))
    summary = latency_summary(result)
    assert summary.mean_ms == pytest.approx(2 * PERIOD_MS, abs=0.5)


def test_dvsync_latency_anchored_at_dtimestamp():
    result = run_dvsync(make_animation(light_params(), "lat-dv"))
    summary = latency_summary(result)
    assert summary.mean_ms == pytest.approx(2 * PERIOD_MS, abs=1.0)


def test_drop_inflates_vsync_latency():
    driver = make_animation(light_params(), "lat-drop", duration_ms=1000)
    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(
        workload, render_ns=int(2.4e6 * PERIOD_MS)
    )
    clean = latency_summary(run_vsync(make_animation(light_params(), "lat-drop2", duration_ms=1000)))
    dropped = latency_summary(run_vsync(driver))
    assert dropped.mean_ms > clean.mean_ms


def test_summary_from_empty():
    summary = LatencySummary.from_values([])
    assert summary.samples == 0
    assert summary.mean_ms == 0.0


def test_summary_percentiles_ordered():
    summary = LatencySummary.from_values([float(v) for v in range(1, 101)])
    assert summary.median_ms <= summary.p95_ms <= summary.max_ms


def test_frame_latencies_length_matches_presents():
    result = run_vsync(make_animation(light_params(), "lat-len"))
    assert len(frame_latencies_ms(result)) == len(result.presented_frames)


def test_content_staleness_constant_under_dvsync():
    result = run_dvsync(make_animation(light_params(), "lat-stale"))
    staleness = content_staleness_ms(result)
    assert max(staleness) - min(staleness) < PERIOD_MS / 2


def test_queue_wait_positive_under_accumulation():
    result = run_dvsync(make_animation(light_params(), "lat-wait"))
    waits = queue_wait_ms(result)
    # Accumulated frames sit in the queue by design.
    assert max(waits) > PERIOD_MS


def test_touch_lag_uses_truth_function():
    result = run_vsync(make_animation(light_params(), "lat-lag"))
    # Content value is the animation curve: compare against itself shifted.
    lags = touch_lag_pixels(result, lambda t: 0.0, panel_height_px=1000)
    assert len(lags) == len([f for f in result.presented_frames if f.content_value is not None])
