"""Metric entry points accept wire-form dicts uniformly (repro.metrics.coerce).

A result that went to JSON (an exported report, a cached study cell) and came
back as a plain dict must yield exactly the same metrics as the live
``RunResult`` it was serialized from.
"""

from __future__ import annotations

import json

import pytest

from repro import simulate
from repro.display.device import PIXEL_5
from repro.exec.builders import burst_animation
from repro.exec.serialize import result_to_wire
from repro.metrics.coerce import as_result
from repro.metrics.fdps import drop_fraction, effective_fps, fdps
from repro.metrics.frames import frame_distribution
from repro.metrics.latency import frame_latencies_ms, latency_summary
from repro.metrics.power import power_breakdown, scheduler_overhead_per_frame_us
from repro.metrics.stutter import longest_freeze_ms


@pytest.fixture(scope="module")
def result_and_wire():
    driver = burst_animation("metrics-wire", target_fdps=6.0, duration_ms=200)
    result = simulate(driver, PIXEL_5, architecture="dvsync", verify=False)
    # Through actual JSON text: the dict a report consumer would hold.
    wire = json.loads(json.dumps(result_to_wire(result)))
    return result, wire


@pytest.mark.parametrize(
    "metric",
    [
        fdps,
        drop_fraction,
        effective_fps,
        longest_freeze_ms,
        frame_latencies_ms,
        latency_summary,
        frame_distribution,
        power_breakdown,
        scheduler_overhead_per_frame_us,
    ],
    ids=lambda fn: fn.__name__,
)
def test_metric_matches_between_live_result_and_wire_dict(result_and_wire, metric):
    result, wire = result_and_wire
    assert metric(wire) == metric(result)


def test_as_result_round_trips_the_wire_form(result_and_wire):
    result, wire = result_and_wire
    rebuilt = as_result(wire)
    assert result_to_wire(rebuilt) == result_to_wire(result)
    assert as_result(result) is result


def test_as_result_rejects_non_wire_mappings():
    with pytest.raises(TypeError, match="missing 'schema' key"):
        as_result({"frames": []})
    with pytest.raises(TypeError, match="expected a RunResult"):
        as_result(42)
