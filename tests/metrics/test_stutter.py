"""Tests for the perceptual stutter model."""

import dataclasses

from repro.display.device import PIXEL_5
from repro.metrics.stutter import (
    count_perceived_stutters,
    drop_episodes,
    longest_freeze_ms,
)
from repro.pipeline.compositor import DropEvent
from repro.pipeline.scheduler_base import RunResult
from repro.testing import light_params, make_animation, run_vsync


def make_result(drop_indices, period=16_666_667):
    drops = [
        DropEvent(time=i * period, vsync_index=i, queued_depth=0, frames_in_flight=1)
        for i in drop_indices
    ]
    from repro.display.hal import PresentRecord

    presents = [
        PresentRecord(
            frame_id=0, present_time=0, vsync_index=0, content_timestamp=0,
            queue_depth_after=0, refresh_period=period,
        ),
        PresentRecord(
            frame_id=1, present_time=100 * period, vsync_index=100,
            content_timestamp=0, queue_depth_after=0, refresh_period=period,
        ),
    ]
    return RunResult(
        scheduler="vsync", scenario="synthetic", device=PIXEL_5, buffer_count=3,
        frames=[], drops=drops, presents=presents, start_time=0,
        end_time=101 * period, ui_busy_ns=0, render_busy_ns=0, gpu_busy_ns=0,
    )


def test_consecutive_drops_merge_into_episode():
    episodes = drop_episodes(make_result([5, 6, 7]).drops)
    assert len(episodes) == 1
    assert episodes[0].length == 3


def test_separate_drops_make_separate_episodes():
    episodes = drop_episodes(make_result([5, 8, 20]).drops)
    assert len(episodes) == 3


def test_no_drops_no_episodes():
    assert drop_episodes([]) == []


def test_multi_frame_episode_always_perceived():
    result = make_result([5, 6])
    assert count_perceived_stutters(result, speed_at=lambda t: 0.0) == 1


def test_single_drop_perceived_only_when_fast():
    result = make_result([5])
    assert count_perceived_stutters(result, speed_at=lambda t: 2.0) == 1
    assert count_perceived_stutters(result, speed_at=lambda t: 0.1) == 0


def test_default_assumes_visible():
    result = make_result([5])
    assert count_perceived_stutters(result) == 1


def test_longest_freeze():
    result = make_result([5, 6, 7, 20])
    assert longest_freeze_ms(result) == 3 * 16.666667


def test_clean_run_has_no_stutters():
    run = run_vsync(make_animation(light_params(), "stut-clean"))
    assert count_perceived_stutters(run) == 0


def test_deep_key_frame_perceived():
    driver = make_animation(light_params(), "stut-deep", duration_ms=1000)
    workload = driver._workloads[15]
    driver._workloads[15] = dataclasses.replace(
        workload, render_ns=int(3.5 * 16_666_667)
    )
    run = run_vsync(driver)
    assert count_perceived_stutters(run, speed_at=driver.animation_speed) >= 1
