"""Tests for report formatting."""

from repro.metrics.report import format_table, paper_vs_measured


def test_format_table_aligns_columns():
    table = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "----" in lines[1]
    assert "longer" in lines[3]
    assert "2.50" in table  # floats formatted to 2 decimals


def test_format_table_handles_mixed_types():
    table = format_table(["m"], [[None], [True], [3.14159]])
    assert "None" in table and "True" in table and "3.14" in table


def test_paper_vs_measured_block():
    block = paper_vs_measured("Fig X", [("fdps", 2.04, 1.9)])
    assert "== Fig X ==" in block
    assert "2.04" in block and "1.90" in block
