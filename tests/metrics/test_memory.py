"""Tests for the memory-footprint model (§6.4)."""

import pytest

from repro.display.device import MATE_40_PRO, MATE_60_PRO, PIXEL_5
from repro.metrics.memory import extra_memory_mb, queue_footprint


def test_queue_footprint_scales_with_buffers():
    three = queue_footprint(PIXEL_5, 3)
    four = queue_footprint(PIXEL_5, 4)
    assert four.queue_bytes - three.queue_bytes == PIXEL_5.framebuffer_bytes


def test_pixel5_extra_about_10mb():
    # Android stock is triple buffering; D-VSync's 4th buffer costs ~10 MB.
    assert extra_memory_mb(PIXEL_5, 4) == pytest.approx(9.7, abs=0.5)


def test_mate_phones_no_extra_buffer_cost():
    # OpenHarmony's render service already uses 4 buffers (§6.4).
    for device in (MATE_40_PRO, MATE_60_PRO):
        extra = extra_memory_mb(device, 4)
        assert extra < 0.05  # only the <10 KB module state


def test_seven_buffers_cost_more():
    assert extra_memory_mb(PIXEL_5, 7) > extra_memory_mb(PIXEL_5, 5)


def test_footprint_mb_conversion():
    footprint = queue_footprint(PIXEL_5, 1)
    assert footprint.queue_mb == pytest.approx(
        PIXEL_5.framebuffer_bytes / (1024 * 1024)
    )
