"""Tests for FDPS and drop-fraction metrics."""

import pytest

from repro.metrics.fdps import drop_fraction, effective_fps, fdps, reduction_percent
from repro.testing import light_params, make_animation, run_vsync
from repro.units import seconds


def test_fdps_zero_without_drops():
    result = run_vsync(make_animation(light_params(), "fdps-clean"))
    assert fdps(result) == 0.0


def test_effective_fps_near_refresh_rate():
    result = run_vsync(make_animation(light_params(), "fdps-fps", duration_ms=1000))
    assert effective_fps(result) == pytest.approx(60, abs=2)


def test_drop_fraction_zero_without_drops():
    result = run_vsync(make_animation(light_params(), "fdps-frac"))
    assert drop_fraction(result) == 0.0


def test_fdps_counts_injected_drops():
    import dataclasses

    driver = make_animation(light_params(), "fdps-drops", duration_ms=1000)
    workload = driver._workloads[20]
    driver._workloads[20] = dataclasses.replace(
        workload, render_ns=int(2.6 * 16_666_667)
    )
    result = run_vsync(driver)
    drops = len(result.effective_drops)
    assert drops >= 1
    assert fdps(result) == pytest.approx(drops / (result.display_span_ns / seconds(1)))


def test_reduction_percent():
    assert reduction_percent(2.0, 0.5) == 75.0
    assert reduction_percent(0.0, 0.5) == 0.0


def test_empty_run_yields_zero_metrics():
    from repro.pipeline.scheduler_base import RunResult
    from repro.display.device import PIXEL_5

    empty = RunResult(
        scheduler="vsync", scenario="empty", device=PIXEL_5, buffer_count=3,
        frames=[], drops=[], presents=[], start_time=0, end_time=0,
        ui_busy_ns=0, render_busy_ns=0, gpu_busy_ns=0,
    )
    assert fdps(empty) == 0.0
    assert drop_fraction(empty) == 0.0
    assert effective_fps(empty) == 0.0
