"""Tests for frame-outcome classification (Fig 6)."""

import dataclasses

import pytest

from repro.metrics.frames import FrameDistribution, FrameOutcome, classify_frame, frame_distribution
from repro.pipeline.frame import FrameRecord, FrameWorkload
from repro.testing import light_params, make_animation, run_vsync

PERIOD = 16_666_667


def make_frame(queued, latch):
    frame = FrameRecord(
        frame_id=0,
        workload=FrameWorkload(1, 1),
        trigger_time=0,
        content_timestamp=0,
    )
    frame.queued_time = queued
    frame.latch_time = latch
    frame.present_time = latch + PERIOD
    return frame


def test_direct_composition_classification():
    frame = make_frame(queued=100, latch=100 + PERIOD // 2)
    assert classify_frame(frame, PERIOD) is FrameOutcome.DIRECT


def test_stuffed_classification():
    frame = make_frame(queued=100, latch=100 + 2 * PERIOD)
    assert classify_frame(frame, PERIOD) is FrameOutcome.STUFFED


def test_unpresented_frame_unclassified():
    frame = FrameRecord(
        frame_id=0, workload=FrameWorkload(1, 1), trigger_time=0, content_timestamp=0
    )
    assert classify_frame(frame, PERIOD) is None


def test_distribution_fractions_sum_to_one():
    dist = FrameDistribution(direct=6, stuffed=3, drops=1)
    total = sum(dist.fraction(outcome) for outcome in FrameOutcome)
    assert total == pytest.approx(1.0)


def test_empty_distribution_fractions_zero():
    dist = FrameDistribution(direct=0, stuffed=0, drops=0)
    assert dist.fraction(FrameOutcome.DIRECT) == 0.0


def test_clean_run_is_mostly_direct():
    result = run_vsync(make_animation(light_params(), "fig6-clean"))
    dist = frame_distribution(result)
    assert dist.fraction(FrameOutcome.DIRECT) > 0.9
    assert dist.drops == 0


def test_drop_creates_stuffed_tail():
    driver = make_animation(light_params(), "fig6-stuffed", duration_ms=1000)
    workload = driver._workloads[10]
    driver._workloads[10] = dataclasses.replace(
        workload, render_ns=int(2.4 * PERIOD)
    )
    result = run_vsync(driver)
    dist = frame_distribution(result)
    assert dist.drops >= 1
    # After the drop, subsequent frames wait in the queue (Fig 2's dark arrow).
    assert dist.stuffed > dist.drops
