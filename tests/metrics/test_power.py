"""Tests for the power and instruction models."""

import pytest

from repro.metrics.power import (
    PowerBreakdown,
    instructions_per_frame,
    power_breakdown,
    power_increase_percent,
    scheduler_overhead_per_frame_us,
)
from repro.testing import light_params, make_animation, run_dvsync, run_vsync


def test_breakdown_total():
    breakdown = PowerBreakdown(cpu_mj=10, scheduler_mj=1, gpu_mj=5, baseline_mj=100)
    assert breakdown.total_mj == 116


def test_baseline_dominates():
    result = run_vsync(make_animation(light_params(), "pow-base"))
    breakdown = power_breakdown(result)
    assert breakdown.baseline_mj > breakdown.cpu_mj


def test_dvsync_power_increase_small_and_positive():
    baseline = run_vsync(make_animation(light_params(), "pow-a", duration_ms=2000))
    improved = run_dvsync(make_animation(light_params(), "pow-a", duration_ms=2000))
    increase = power_increase_percent(baseline, improved)
    # Same frames rendered; only the little-core overhead differs (§6.7).
    assert 0 < increase < 1.0


def test_extra_overhead_increases_power():
    baseline = run_vsync(make_animation(light_params(), "pow-b"))
    improved = run_dvsync(make_animation(light_params(), "pow-b"))
    plain = power_increase_percent(baseline, improved)
    with_zdp = power_increase_percent(baseline, improved, improved_extra_ns=10_000_000)
    assert with_zdp > plain


def test_instructions_per_frame_magnitude():
    result = run_vsync(make_animation(light_params(), "pow-instr"))
    instructions = instructions_per_frame(result)
    # Millions of instructions per frame, same order as the paper's 10.8 M.
    assert 1e6 < instructions < 1e8


def test_dvsync_instruction_overhead_under_two_percent():
    baseline = run_vsync(make_animation(light_params(), "pow-i2", duration_ms=2000))
    improved = run_dvsync(make_animation(light_params(), "pow-i2", duration_ms=2000))
    overhead = (
        instructions_per_frame(improved) / instructions_per_frame(baseline) - 1
    ) * 100
    assert 0 < overhead < 2.0  # paper: 0.52 %


def test_scheduler_overhead_per_frame():
    result = run_dvsync(make_animation(light_params(), "pow-over"))
    assert scheduler_overhead_per_frame_us(result) == pytest.approx(102.6, abs=1.0)


def test_vsync_has_no_scheduler_overhead():
    result = run_vsync(make_animation(light_params(), "pow-none"))
    assert scheduler_overhead_per_frame_us(result) == 0.0
