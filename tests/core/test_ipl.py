"""Tests for the Input Prediction Layer and its curve fitters."""

import pytest

from repro.core.ipl import (
    InputPredictionLayer,
    LastValuePredictor,
    LinearPredictor,
    QuadraticPredictor,
    ZoomingDistancePredictor,
)
from repro.errors import PredictionError
from repro.units import ms, us


def linear_samples(slope=2.0, count=8, step_ms=8.0):
    return [(ms(step_ms * i), slope * step_ms * i / 1000) for i in range(count)]


def test_last_value_returns_latest():
    predictor = LastValuePredictor()
    samples = [(0, 1.0), (100, 2.0), (200, 3.5)]
    assert predictor.predict(samples, 10_000) == 3.5


def test_last_value_needs_one_sample():
    with pytest.raises(PredictionError):
        LastValuePredictor().predict([], 0)


def test_linear_extrapolates_constant_velocity():
    predictor = LinearPredictor()
    samples = linear_samples(slope=2.0)
    target = ms(100)
    assert predictor.predict(samples, target) == pytest.approx(0.2, abs=1e-6)


def test_linear_needs_two_samples():
    with pytest.raises(PredictionError):
        LinearPredictor().predict([(0, 1.0)], 100)


def test_linear_window_validation():
    with pytest.raises(PredictionError):
        LinearPredictor(window=1)


def test_quadratic_fits_parabola():
    predictor = QuadraticPredictor()
    samples = [(ms(8 * i), (8 * i / 1000) ** 2) for i in range(8)]
    target_s = 0.1
    predicted = predictor.predict(samples, ms(100))
    assert predicted == pytest.approx(target_s**2, rel=0.05)


def test_quadratic_needs_three_samples():
    with pytest.raises(PredictionError):
        QuadraticPredictor().predict([(0, 0.0), (1, 1.0)], 100)


def test_zdp_is_linear_with_paper_overhead():
    assert ZoomingDistancePredictor.overhead_ns == us(151.6)
    predictor = ZoomingDistancePredictor()
    samples = linear_samples(slope=1.0)
    assert predictor.predict(samples, ms(120)) == pytest.approx(0.12, abs=1e-6)


def test_layer_defaults_to_linear():
    layer = InputPredictionLayer()
    assert isinstance(layer.predictor, LinearPredictor)


def test_layer_counts_predictions_and_overhead():
    layer = InputPredictionLayer(ZoomingDistancePredictor())
    layer.predict(linear_samples(), ms(100))
    layer.predict(linear_samples(), ms(110))
    assert layer.predictions == 2
    assert layer.total_overhead_ns == 2 * us(151.6)


def test_layer_returns_none_without_samples():
    layer = InputPredictionLayer()
    assert layer.predict([], 100) is None


def test_layer_falls_back_to_last_value_when_unfittable():
    layer = InputPredictionLayer()
    value = layer.predict([(0, 4.2)], ms(100))  # one sample: no line fit
    assert value == 4.2
    assert layer.fallbacks == 1
    assert layer.predictions == 0


def test_register_replaces_predictor():
    layer = InputPredictionLayer()
    zdp = ZoomingDistancePredictor()
    layer.register(zdp)
    assert layer.predictor is zdp


def test_alpha_beta_tracks_constant_velocity():
    from repro.core.ipl import AlphaBetaPredictor

    predictor = AlphaBetaPredictor()
    samples = linear_samples(slope=3.0, count=12)
    predicted = predictor.predict(samples, ms(120))
    assert predicted == pytest.approx(0.36, abs=0.03)


def test_alpha_beta_robust_to_noise():
    from repro.core.ipl import AlphaBetaPredictor
    from repro.sim.rng import SeededRng

    rng = SeededRng(11)
    noisy = [
        (t, v + rng.normal(0.0, 0.005)) for t, v in linear_samples(slope=2.0, count=20)
    ]
    ab = AlphaBetaPredictor().predict(noisy, ms(200))
    assert ab == pytest.approx(0.4, abs=0.06)


def test_alpha_beta_needs_two_samples():
    from repro.core.ipl import AlphaBetaPredictor

    with pytest.raises(PredictionError):
        AlphaBetaPredictor().predict([(0, 1.0)], 100)


def test_alpha_beta_parameter_validation():
    from repro.core.ipl import AlphaBetaPredictor

    with pytest.raises(PredictionError):
        AlphaBetaPredictor(alpha=0.0)
    with pytest.raises(PredictionError):
        AlphaBetaPredictor(beta=3.0)
