"""Tests for the Frame Pre-Executor's two-stage policy."""

from repro.core.fpe import FPEStage, FramePreExecutor
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.frame import FrameRecord, FrameWorkload
from repro.pipeline.stages import RenderPipeline
from repro.sim.engine import Simulator


class Harness:
    def __init__(self, capacity=4, limit=3):
        self.sim = Simulator()
        self.queue = BufferQueue(capacity=capacity, buffer_bytes=1024)
        self.pipeline = RenderPipeline(self.sim, self.queue)
        self.triggered = 0
        self.allow = True
        self.fpe = FramePreExecutor(self.queue, self.pipeline, limit, self._trigger)

    def _trigger(self):
        if not self.allow:
            return False
        self.triggered += 1
        frame = FrameRecord(
            frame_id=self.triggered,
            workload=FrameWorkload(ui_ns=10, render_ns=10),
            trigger_time=self.sim.now,
            content_timestamp=self.sim.now,
        )
        self.pipeline.start_frame(frame)
        return True

    def queue_buffer(self, frame_id):
        buffer = self.queue.try_dequeue()
        self.queue.queue(buffer, frame_id=frame_id, content_timestamp=0,
                         render_rate_hz=60, now=self.sim.now)


def test_initial_stage_is_accumulation():
    h = Harness()
    assert h.fpe.stage is FPEStage.ACCUMULATION


def test_trigger_succeeds_when_gate_open():
    h = Harness()
    assert h.fpe.try_trigger()
    assert h.triggered == 1


def test_trigger_blocked_while_ui_busy():
    h = Harness()
    h.fpe.try_trigger()
    # UI thread is busy with the frame we just started.
    assert not h.fpe.try_trigger()
    assert h.triggered == 1


def test_occupancy_counts_queued_plus_extra_inflight():
    h = Harness()
    h.queue_buffer(0)
    h.queue_buffer(1)
    assert h.fpe.occupancy == 2
    h.fpe.try_trigger()  # one frame in flight doesn't add to occupancy
    assert h.fpe.occupancy == 2


def test_gate_closes_at_limit():
    h = Harness(capacity=5, limit=3)
    for frame_id in range(3):
        h.queue_buffer(frame_id)
    assert h.fpe.stage is FPEStage.SYNC
    assert not h.fpe.try_trigger()


def test_sync_trigger_counted_after_block():
    h = Harness(capacity=5, limit=3)
    for frame_id in range(3):
        h.queue_buffer(frame_id)
    assert not h.fpe.try_trigger()  # blocked on occupancy
    h.queue.acquire()  # screen consumes one
    assert h.fpe.try_trigger()
    assert h.fpe.triggers_in_sync == 1
    assert h.fpe.triggers_in_accumulation == 0


def test_accumulation_triggers_counted():
    h = Harness()
    h.fpe.try_trigger()
    h.sim.run()
    h.fpe.try_trigger()
    h.sim.run()
    assert h.fpe.triggers_in_accumulation == 2
    assert h.fpe.triggers_in_sync == 0


def test_trigger_callback_refusal_propagates():
    h = Harness()
    h.allow = False
    assert not h.fpe.try_trigger()
    assert h.triggered == 0


def test_limit_is_mutable_at_runtime():
    h = Harness(capacity=5, limit=1)
    h.queue_buffer(0)
    assert not h.fpe.can_trigger()
    h.fpe.prerender_limit = 3  # aware-channel API raises the limit
    assert h.fpe.can_trigger()
