"""The typed simulation API: Arch, SimConfig, and the legacy-spelling shims."""

from __future__ import annotations

import dataclasses

import pytest

from repro import Arch, SimConfig
from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.exec.spec import DriverSpec, RunSpec


def _driver() -> DriverSpec:
    return DriverSpec.of(
        "repro.exec.builders:burst_animation",
        name="api-test",
        target_fdps=3.0,
        refresh_hz=60,
        duration_ms=100,
    )


# --------------------------------------------------------------------- Arch
def test_arch_is_wire_compatible():
    assert Arch.DVSYNC == "dvsync"
    assert Arch.VSYNC == "vsync"
    assert str(Arch.DVSYNC) == "dvsync"
    assert f"{Arch.VSYNC}" == "vsync"
    assert hash(Arch.DVSYNC) == hash("dvsync")


def test_arch_coerce():
    assert Arch.coerce("vsync") is Arch.VSYNC
    assert Arch.coerce(Arch.DVSYNC) is Arch.DVSYNC
    with pytest.raises(ConfigurationError, match="unknown architecture"):
        Arch.coerce("tripple-buffer")


# ---------------------------------------------------------------- SimConfig
def test_simconfig_neutral_default_normalizes_to_nothing():
    assert SimConfig().normalize(Arch.VSYNC) == (None, None)
    assert SimConfig().normalize(Arch.DVSYNC) == (None, None)


def test_simconfig_shorthands_become_a_dvsync_config():
    buffers, config = SimConfig(buffer_count=5, prerender_limit=2).normalize(
        Arch.DVSYNC
    )
    assert buffers is None
    assert config == DVSyncConfig(buffer_count=5, prerender_limit=2)
    buffers, config = SimConfig(buffer_count=3).normalize("vsync")
    assert (buffers, config) == (3, None)


def test_simconfig_rejects_dvsync_knobs_under_vsync():
    with pytest.raises(ConfigurationError, match="never pre-renders"):
        SimConfig(prerender_limit=2).normalize(Arch.VSYNC)
    with pytest.raises(ConfigurationError, match="only applies to Arch.DVSYNC"):
        SimConfig(dvsync=DVSyncConfig(buffer_count=4)).normalize(Arch.VSYNC)


def test_simconfig_rejects_conflicting_spellings():
    with pytest.raises(ConfigurationError, match="not both"):
        SimConfig(buffer_count=4, dvsync=DVSyncConfig(buffer_count=4))
    with pytest.raises(ConfigurationError, match="unknown engine"):
        SimConfig(engine="warp")
    with pytest.raises(ConfigurationError, match="buffer_count"):
        SimConfig(buffer_count="four")


# ------------------------------------------------------- deprecation shims
def test_legacy_int_config_still_works_with_a_warning():
    with pytest.deprecated_call(match="SimConfig\\(buffer_count=...\\)"):
        coerced = SimConfig.coerce(4)
    assert coerced == SimConfig(buffer_count=4)


def test_legacy_dvsync_config_still_works_with_a_warning():
    config = DVSyncConfig(buffer_count=6, prerender_limit=3)
    with pytest.deprecated_call(match="SimConfig\\(dvsync=...\\)"):
        coerced = SimConfig.coerce(config)
    assert coerced == SimConfig(dvsync=config)


def test_coerce_passthrough_and_rejection():
    cfg = SimConfig(buffer_count=2)
    assert SimConfig.coerce(cfg) is cfg
    assert SimConfig.coerce(None) == SimConfig()
    with pytest.raises(ConfigurationError, match="config must be"):
        SimConfig.coerce("4 buffers")


def test_simulate_rejects_knobs_given_twice():
    from repro import simulate
    from repro.workloads.scenarios import Scenario

    scenario = Scenario(
        name="api-merge",
        description="knob-merge conflict case",
        refresh_hz=60,
        target_vsync_fdps=3.0,
        duration_ms=100,
    )
    with pytest.raises(ConfigurationError, match="pass it once"):
        simulate(
            scenario,
            PIXEL_5,
            architecture=Arch.VSYNC,
            config=SimConfig(seed=1),
            seed=2,
        )


# ------------------------------------------------------ content-hash parity
def test_old_and_new_spellings_hash_identically():
    """Typed spellings are pure surface: the content address cannot move.

    A cache warmed by code using ``architecture="dvsync"`` + ``config=4``
    must keep hitting when callers migrate to ``Arch.DVSYNC`` +
    ``SimConfig(buffer_count=4)``.
    """
    driver = _driver()
    with pytest.deprecated_call():
        legacy_cfg = SimConfig.coerce(4)
    typed_cfg = SimConfig(buffer_count=4)

    for arch_old, arch_new in (("vsync", Arch.VSYNC), ("dvsync", Arch.DVSYNC)):
        old_buffers, old_dvsync = legacy_cfg.normalize(arch_old)
        new_buffers, new_dvsync = typed_cfg.normalize(arch_new)
        old_spec = RunSpec(
            driver=driver,
            device=PIXEL_5,
            architecture=arch_old,
            buffer_count=old_buffers,
            dvsync=old_dvsync,
        )
        new_spec = RunSpec(
            driver=driver,
            device=PIXEL_5,
            architecture=arch_new,
            buffer_count=new_buffers,
            dvsync=new_dvsync,
        )
        assert old_spec == new_spec
        assert old_spec.content_hash() == new_spec.content_hash()


def test_arch_member_lands_as_wire_string_on_the_spec():
    spec = RunSpec(driver=_driver(), device=PIXEL_5, architecture=Arch.DVSYNC)
    assert type(spec.architecture) is str or spec.architecture == "dvsync"
    assert spec.content_hash() == dataclasses.replace(
        spec, architecture="dvsync"
    ).content_hash()


def test_simconfig_engine_member_is_normalized():
    # engine accepts an enum-like object carrying .value, mirroring RunSpec.
    class EngineLike:
        value = "event"

    cfg = SimConfig(engine=EngineLike())
    assert cfg.engine == "event"


# ----------------------------------------------------------------- exports
def test_public_api_exports_the_typed_surface():
    import repro

    for name in ("Arch", "SimConfig", "Study", "StudyResult", "execute_studies"):
        assert hasattr(repro, name), name
        assert name in repro.__all__
