"""Tests for the runtime controller's per-frame routing."""

import pytest

from repro.core.controller import RuntimeController, TimingMode
from repro.pipeline.frame import FrameCategory


def test_animations_route_to_dvsync():
    controller = RuntimeController()
    assert controller.mode_for(FrameCategory.DETERMINISTIC_ANIMATION) is TimingMode.DVSYNC


def test_interactions_route_to_dvsync_with_ipl():
    controller = RuntimeController(ipl_enabled=True)
    assert controller.mode_for(FrameCategory.PREDICTABLE_INTERACTION) is TimingMode.DVSYNC


def test_interactions_fall_back_without_ipl():
    controller = RuntimeController(ipl_enabled=False)
    assert controller.mode_for(FrameCategory.PREDICTABLE_INTERACTION) is TimingMode.VSYNC


def test_realtime_always_vsync():
    controller = RuntimeController()
    assert controller.mode_for(FrameCategory.REALTIME) is TimingMode.VSYNC


def test_disabled_routes_everything_to_vsync():
    controller = RuntimeController(enabled=False)
    for category in FrameCategory:
        assert controller.mode_for(category) is TimingMode.VSYNC


def test_runtime_switch_logged():
    controller = RuntimeController(enabled=True)
    controller.set_enabled(False, now=100)
    controller.set_enabled(True, now=200)
    assert controller.switch_log == [(100, False), (200, True)]


def test_redundant_switch_not_logged():
    controller = RuntimeController(enabled=True)
    controller.set_enabled(True, now=50)
    assert controller.switch_log == []


def test_set_enabled_requires_a_timestamp():
    """Regression: ``now`` defaulting to 0 used to corrupt the switch log."""
    controller = RuntimeController(enabled=True)
    with pytest.raises(TypeError):
        controller.set_enabled(False)


def test_note_routed_counters():
    controller = RuntimeController()
    controller.note_routed(TimingMode.DVSYNC)
    controller.note_routed(TimingMode.DVSYNC)
    controller.note_routed(TimingMode.VSYNC)
    assert controller.routed_dvsync == 2
    assert controller.routed_vsync == 1


def test_mode_for_is_pure():
    controller = RuntimeController()
    controller.mode_for(FrameCategory.DETERMINISTIC_ANIMATION)
    assert controller.routed_dvsync == 0
