"""Tests for the dual-channel decoupling APIs."""

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.core.fpe import FPEStage
from repro.core.ipl import ZoomingDistancePredictor
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.testing import light_params, make_animation


def make_scheduler(buffer_count=5):
    driver = make_animation(light_params(), "api-test", duration_ms=400)
    return DVSyncScheduler(driver, PIXEL_5, DVSyncConfig(buffer_count=buffer_count))


def test_set_prerender_limit():
    scheduler = make_scheduler()
    scheduler.api.set_prerender_limit(2)
    assert scheduler.api.prerender_limit == 2
    assert scheduler.fpe.prerender_limit == 2


def test_prerender_limit_bounds():
    scheduler = make_scheduler(buffer_count=5)
    with pytest.raises(ConfigurationError):
        scheduler.api.set_prerender_limit(0)
    with pytest.raises(ConfigurationError):
        scheduler.api.set_prerender_limit(5)  # only 4 back buffers


def test_register_input_predictor():
    scheduler = make_scheduler()
    zdp = ZoomingDistancePredictor()
    scheduler.api.register_input_predictor(zdp)
    assert scheduler.ipl.predictor is zdp


def test_get_frame_display_time_is_future():
    scheduler = make_scheduler()
    display = scheduler.api.get_frame_display_time()
    assert display > scheduler.sim.now


def test_d_timestamp_convention():
    scheduler = make_scheduler()
    display = scheduler.api.get_frame_display_time()
    d_ts = scheduler.api.get_d_timestamp()
    assert display - d_ts == 2 * PIXEL_5.vsync_period


def test_runtime_switch_before_run():
    scheduler = make_scheduler()
    scheduler.api.set_dvsync_enabled(False)
    assert not scheduler.api.enabled
    scheduler.api.set_dvsync_enabled(True)
    assert scheduler.api.enabled


def test_runtime_switch_mid_run_effective():
    scheduler = make_scheduler()
    scheduler.api.set_dvsync_enabled(False)
    result = scheduler.run()
    assert all(not f.decoupled for f in result.frames)


def test_stage_property():
    scheduler = make_scheduler()
    assert scheduler.api.stage is FPEStage.ACCUMULATION
