"""Tests for the D-VSync x LTPO co-design."""

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.core.ltpo_codesign import LTPOCoDesign
from repro.display.device import MATE_60_PRO
from repro.display.ltpo import LTPOController
from repro.testing import light_params, make_animation
from repro.units import ms
from repro.workloads.animations import DecelerateCurve
from repro.workloads.drivers import AnimationDriver


def make_run(enforce_drain=True, duration_ms=1200.0):
    params = light_params(refresh_hz=120)
    driver = AnimationDriver(
        "ltpo-fling",
        params,
        duration_ns=ms(duration_ms),
        curve=DecelerateCurve(rate=4.0),  # fast start, slow tail
    )
    scheduler = DVSyncScheduler(driver, MATE_60_PRO, DVSyncConfig(buffer_count=4))
    ltpo = LTPOController(scheduler.hw_vsync, max_hz=120)
    bridge = LTPOCoDesign(scheduler, ltpo, enforce_drain=enforce_drain)
    result = scheduler.run()
    return result, scheduler, ltpo, bridge


def test_rate_drops_as_fling_decelerates():
    _, _, ltpo, _ = make_run()
    assert ltpo.current_hz < 120
    switched_to = [entry[2] for entry in ltpo.switch_log]
    assert switched_to == sorted(switched_to, reverse=True)


def test_co_design_prevents_rate_mismatch():
    _, _, _, bridge = make_run(enforce_drain=True)
    assert bridge.rate_mismatched_presents == 0


def test_without_co_design_mismatches_appear():
    _, _, _, bridge = make_run(enforce_drain=False)
    assert bridge.rate_mismatched_presents > 0


def test_deferred_switches_counted_with_drain_rule():
    _, _, _, bridge = make_run(enforce_drain=True)
    assert bridge.deferred_switches > 0


def test_render_rate_follows_panel():
    _, scheduler, ltpo, _ = make_run()
    assert scheduler.pipeline.render_rate_hz == ltpo.current_hz


def test_no_drops_introduced_by_rate_switches():
    result, _, _, _ = make_run()
    assert len(result.effective_drops) == 0
