"""Tests for D-VSync configuration."""

import pytest

from repro.core.config import DVSyncConfig
from repro.errors import ConfigurationError
from repro.units import us


def test_defaults_match_paper_deployment():
    config = DVSyncConfig()
    assert config.buffer_count == 4
    assert config.resolved_prerender_limit == 3  # 3 back buffers (§5.1)
    assert config.per_frame_overhead_ns == us(102.6)
    assert config.dtv_enabled and config.ipl_enabled and config.enabled


def test_explicit_limit_respected():
    config = DVSyncConfig(buffer_count=5, prerender_limit=3)
    assert config.resolved_prerender_limit == 3


def test_limit_cannot_exceed_back_buffers():
    with pytest.raises(ConfigurationError):
        DVSyncConfig(buffer_count=4, prerender_limit=4)


def test_limit_must_be_positive():
    with pytest.raises(ConfigurationError):
        DVSyncConfig(buffer_count=4, prerender_limit=0)


def test_minimum_buffer_count():
    with pytest.raises(ConfigurationError):
        DVSyncConfig(buffer_count=2)


def test_negative_overhead_rejected():
    with pytest.raises(ConfigurationError):
        DVSyncConfig(per_frame_overhead_ns=-1)


def test_pipeline_depth_validated():
    with pytest.raises(ConfigurationError):
        DVSyncConfig(pipeline_depth_periods=0)


def test_seven_buffer_sweep_config():
    config = DVSyncConfig(buffer_count=7)
    assert config.resolved_prerender_limit == 6
