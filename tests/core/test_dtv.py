"""Tests for the Display Time Virtualizer."""

from repro.core.dtv import DisplayTimeVirtualizer
from repro.display.hal import PresentRecord
from repro.display.vsync import HWVsyncSource
from repro.graphics.bufferqueue import BufferQueue
from repro.pipeline.stages import RenderPipeline
from repro.sim.engine import Simulator

PERIOD = 100


def make_dtv(depth=2):
    sim = Simulator()
    source = HWVsyncSource(sim, PERIOD)
    queue = BufferQueue(capacity=4, buffer_bytes=1024)
    pipeline = RenderPipeline(sim, queue)
    dtv = DisplayTimeVirtualizer(source, queue, pipeline, pipeline_depth_periods=depth)
    return sim, source, queue, pipeline, dtv


def present(frame_id, time, period=PERIOD):
    return PresentRecord(
        frame_id=frame_id,
        present_time=time,
        vsync_index=time // period,
        content_timestamp=0,
        queue_depth_after=0,
        refresh_period=period,
    )


def test_empty_queue_predicts_pipeline_floor():
    sim, source, _, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    dtv._exec_estimate_ns = 40
    prediction = dtv.preview(sim.now)
    # Ready by t=40 -> first latch at 100, visible at 200.
    assert prediction.predicted_present == 200
    assert prediction.d_timestamp == 0  # present - 2 periods


def test_occupancy_pushes_prediction_back():
    sim, source, queue, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    dtv._exec_estimate_ns = 40
    for frame_id in range(2):
        buffer = queue.try_dequeue()
        queue.queue(buffer, frame_id=frame_id, content_timestamp=0, render_rate_hz=60, now=0)
    prediction = dtv.preview(sim.now)
    # Two buffers ahead: latch at 300, present at 400.
    assert prediction.predicted_present == 400


def test_commit_enforces_monotonic_pacing():
    sim, source, _, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    dtv._exec_estimate_ns = 10
    first = dtv.preview(sim.now)
    dtv.commit(first)
    second = dtv.preview(sim.now)
    assert second.predicted_present == first.predicted_present + PERIOD


def test_preview_does_not_mutate():
    sim, source, _, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    a = dtv.preview(sim.now)
    b = dtv.preview(sim.now)
    assert a == b
    assert dtv.predictions_made == 0


def test_calibration_records_error_and_skips():
    sim, source, _, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    prediction = dtv.predict(sim.now)
    dtv.track(7, prediction)
    # The frame actually displayed one period late (a residual drop).
    dtv.on_present(present(7, prediction.predicted_present + PERIOD))
    assert dtv.calibrations == 1
    assert dtv.skipped_periods == 1
    assert dtv.pacing_errors_ns == [PERIOD]


def test_untracked_present_ignored():
    _, _, _, _, dtv = make_dtv()
    dtv.on_present(present(99, 500))
    assert dtv.calibrations == 0


def test_exec_estimate_ewma_moves_toward_observations():
    _, _, _, _, dtv = make_dtv()
    start = dtv.exec_estimate_ns
    for _ in range(50):
        dtv.observe_execution(10)
    assert dtv.exec_estimate_ns < start
    assert abs(dtv.exec_estimate_ns - 10) < 5


def test_exec_estimate_ignores_nonpositive():
    _, _, _, _, dtv = make_dtv()
    before = dtv.exec_estimate_ns
    dtv.observe_execution(0)
    assert dtv.exec_estimate_ns == before


def test_mean_abs_pacing_error():
    _, _, _, _, dtv = make_dtv()
    dtv.pacing_errors_ns.extend([-100, 100, 200])
    assert dtv.mean_abs_pacing_error_ns() == (100 + 100 + 200) / 3


def test_rate_change_resets_floor():
    sim, source, _, _, dtv = make_dtv()
    source.start()
    sim.run(until=0)
    dtv.predict(sim.now)
    dtv.on_rate_change(PERIOD, PERIOD * 2)
    assert dtv._last_committed_present is None


def test_d_timestamp_back_dating_depth():
    sim, source, _, _, dtv3 = make_dtv(depth=3)
    source.start()
    sim.run(until=0)
    prediction = dtv3.preview(sim.now)
    assert prediction.predicted_present - prediction.d_timestamp == 3 * PERIOD
