"""Tests for the D-VSync scheduler end to end."""

import dataclasses

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.pipeline.frame import FrameCategory
from repro.testing import light_params, make_animation
from repro.units import hz_to_period, ms
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.distributions import FrameTimeParams

PERIOD = hz_to_period(60)


def run_dvsync(driver, config=None):
    scheduler = DVSyncScheduler(driver, PIXEL_5, config or DVSyncConfig(buffer_count=4))
    return scheduler.run(), scheduler


def test_accumulation_builds_queue_depth():
    driver = make_animation(light_params(), "dv-accum", duration_ms=500)
    result, scheduler = run_dvsync(driver)
    # Short frames accumulate up to the pre-render limit.
    assert scheduler.buffer_queue.max_queued_depth >= 3


def test_frames_run_ahead_of_display():
    driver = make_animation(light_params(), "dv-ahead", duration_ms=500)
    result, _ = run_dvsync(driver)
    leads = [
        f.present_time - f.trigger_time for f in result.presented_frames[6:-4]
    ]
    # Steady decoupled frames execute several periods before display.
    assert min(leads) >= 2 * PERIOD
    assert max(leads) >= 3 * PERIOD


def test_d_timestamps_pace_uniformly():
    driver = make_animation(light_params(), "dv-pace", duration_ms=500)
    result, _ = run_dvsync(driver)
    stamps = [f.content_timestamp for f in result.frames]
    deltas = {stamps[i + 1] - stamps[i] for i in range(len(stamps) - 1)}
    # One VSync period apart (integer rounding of 16.7 ms allowed).
    assert all(abs(d - PERIOD) <= 2 for d in deltas)


def test_content_matches_display_time():
    driver = make_animation(light_params(), "dv-correct", duration_ms=500)
    result, _ = run_dvsync(driver)
    for frame in result.presented_frames:
        # DTV convention: content represents present minus two periods.
        assert abs((frame.present_time - frame.content_timestamp) - 2 * PERIOD) <= 2


def test_absorbs_long_frame_that_drops_under_vsync():
    def inject(driver):
        workload = driver._workloads[12]
        driver._workloads[12] = dataclasses.replace(
            workload, render_ns=int(2.6 * PERIOD)
        )
        return driver

    vsync_driver = inject(make_animation(light_params(), "dv-absorb", duration_ms=500))
    baseline = VSyncScheduler(vsync_driver, PIXEL_5, buffer_count=3).run()
    assert len(baseline.effective_drops) >= 1

    dvsync_driver = inject(make_animation(light_params(), "dv-absorb", duration_ms=500))
    improved, _ = run_dvsync(dvsync_driver)
    assert len(improved.effective_drops) == 0


def test_overhead_charged_per_decoupled_frame():
    driver = make_animation(light_params(), "dv-cost", duration_ms=500)
    result, _ = run_dvsync(driver)
    decoupled = sum(1 for f in result.frames if f.decoupled)
    assert result.scheduler_overhead_ns == decoupled * DVSyncConfig().per_frame_overhead_ns


def test_realtime_frames_take_vsync_path():
    params = dataclasses.replace(light_params(), category=FrameCategory.REALTIME)
    driver = make_animation(params, "dv-realtime", duration_ms=400)
    result, scheduler = run_dvsync(driver)
    assert result.frames, "realtime frames still render"
    assert all(not f.decoupled for f in result.frames)
    assert scheduler.controller.routed_vsync == len(result.frames)
    # Traditional path: content timestamps are tick times, not D-Timestamps.
    for frame in result.frames:
        assert frame.trigger_time == frame.content_timestamp


def test_disabled_dvsync_behaves_like_vsync():
    config = DVSyncConfig(buffer_count=4, enabled=False)
    driver = make_animation(light_params(), "dv-off", duration_ms=400)
    result, _ = run_dvsync(driver, config)
    assert all(not f.decoupled for f in result.frames)


def test_dtv_ablation_stamps_wall_clock():
    config = DVSyncConfig(buffer_count=4, dtv_enabled=False)
    driver = make_animation(light_params(), "dv-nodtv", duration_ms=400)
    result, _ = run_dvsync(driver, config)
    for frame in result.frames:
        assert frame.content_timestamp == frame.trigger_time


def test_extra_metrics_reported():
    driver = make_animation(light_params(), "dv-extra", duration_ms=400)
    result, _ = run_dvsync(driver)
    assert result.extra["fpe_triggers_accumulation"] >= 1
    assert result.extra["dtv_predictions"] == len(result.frames)
    assert result.extra["prerender_limit"] == 3


def test_bursty_driver_drains_between_bursts():
    driver = make_animation(
        light_params(), "dv-burst", duration_ms=200, bursts=3, burst_period_ms=500
    )
    result, _ = run_dvsync(driver)
    assert len(result.effective_drops) == 0
    # No content may be produced before its burst's input arrives.
    for frame in result.frames:
        burst = (frame.content_timestamp) // ms(500)
        assert frame.trigger_time >= burst * ms(500)


def test_deterministic_across_runs():
    first, _ = run_dvsync(make_animation(light_params(), "dv-det", duration_ms=400))
    second, _ = run_dvsync(make_animation(light_params(), "dv-det", duration_ms=400))
    assert [f.present_time for f in first.frames] == [
        f.present_time for f in second.frames
    ]


def test_pacing_error_small_without_drops():
    driver = make_animation(light_params(), "dv-err", duration_ms=500)
    result, _ = run_dvsync(driver)
    assert result.extra["dtv_mean_abs_pacing_error_ns"] < PERIOD / 2
