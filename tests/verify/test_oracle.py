"""Tests for the differential VSync/D-VSync oracle."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.executor import Executor
from repro.verify.oracle import (
    ORACLE_SCENARIOS,
    ClaimOutcome,
    DifferentialReport,
    run_differential_oracle,
)


def test_registered_scenarios_cover_the_paper_regimes():
    assert len(ORACLE_SCENARIOS) >= 5
    devices = {scenario.device.refresh_hz for scenario in ORACLE_SCENARIOS.values()}
    assert {60, 90, 120} <= devices


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown oracle scenario"):
        run_differential_oracle(names=["nope"])


def test_oracle_passes_on_one_scenario():
    with Executor(jobs=1, cache=False) as executor:
        report = run_differential_oracle(names=["droppy-60"], executor=executor)
    assert report.passed, report.render()
    claims = {outcome.claim for outcome in report.outcomes}
    assert claims == {
        "invariants-clean",
        "drops-not-worse",
        "content-order",
        "latency-elastic",
    }
    # The jank regime actually has drops for decoupling to win back.
    drops = next(o for o in report.outcomes if o.claim == "drops-not-worse")
    assert "vsync 0" not in drops.detail


def test_oracle_passes_on_every_registered_scenario():
    with Executor(jobs=1, cache=False) as executor:
        report = run_differential_oracle(executor=executor)
    assert report.passed, report.render()
    assert len(report.outcomes) == 4 * len(ORACLE_SCENARIOS)


def test_report_render_flags_failures():
    report = DifferentialReport(
        outcomes=[
            ClaimOutcome(
                scenario="s", claim="drops-not-worse", passed=False, detail="d"
            )
        ]
    )
    assert not report.passed
    assert "FAIL" in report.render()
    assert "1 claim(s) FAILED" in report.render()
