"""Tests for the runtime invariant checker."""

import pytest

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.core.ltpo_codesign import LTPOCoDesign
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.display.ltpo import LTPOController
from repro.errors import ConfigurationError, InvariantViolationError
from repro.testing import light_params, make_animation, run_dvsync, run_vsync
from repro.units import ms
from repro.verify import runtime
from repro.verify.invariants import (
    INVARIANTS,
    InvariantChecker,
    Violation,
    resolve_checker,
)
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.animations import DecelerateCurve
from repro.workloads.distributions import params_for_target_fdps
from repro.workloads.drivers import AnimationDriver


def test_registry_ids_are_documented():
    assert len(INVARIANTS) >= 10
    for invariant_id, description in INVARIANTS.items():
        assert invariant_id == invariant_id.lower()
        assert description


def test_clean_vsync_run_is_violation_free():
    result = run_vsync(make_animation(light_params(), "inv-vsync"))
    verdict = result.extra["invariants"]
    assert verdict["violation_count"] == 0
    assert verdict["violations"] == []
    assert verdict["checked"] > 0
    assert verdict["waived"] == {}
    assert verdict["relaxed"] is None


def test_clean_droppy_dvsync_run_is_violation_free():
    params = params_for_target_fdps(5.0, 60)
    result = run_dvsync(make_animation(params, "inv-droppy"))
    verdict = result.extra["invariants"]
    assert verdict["violation_count"] == 0
    assert verdict["checked"] > 0


def test_disabled_scheduler_registers_no_verifier():
    scheduler = VSyncScheduler(
        make_animation(light_params(), "inv-off"),
        PIXEL_5,
        buffer_count=3,
        verify=False,
    )
    assert scheduler.verifier is None
    result = scheduler.run()
    assert "invariants" not in result.extra


def test_resolve_checker_semantics():
    assert resolve_checker(False) is None
    checker = resolve_checker(True)
    assert isinstance(checker, InvariantChecker) and not checker.strict
    explicit = InvariantChecker(strict=True)
    assert resolve_checker(explicit) is explicit
    with pytest.raises(ConfigurationError):
        resolve_checker(7)


def test_resolve_checker_follows_runtime_switch():
    runtime.set_enabled(False)
    assert resolve_checker(None) is None
    runtime.set_enabled(True, strict=False)
    checker = resolve_checker(None)
    assert isinstance(checker, InvariantChecker) and not checker.strict
    runtime.set_enabled(True, strict=True)
    assert resolve_checker(None).strict


def test_checker_serves_exactly_one_run():
    checker = InvariantChecker()
    VSyncScheduler(
        make_animation(light_params(), "inv-one"),
        PIXEL_5,
        buffer_count=3,
        verify=checker,
    )
    with pytest.raises(ConfigurationError):
        VSyncScheduler(
            make_animation(light_params(), "inv-two"),
            PIXEL_5,
            buffer_count=3,
            verify=checker,
        )


def test_arm_requires_attach():
    with pytest.raises(ConfigurationError):
        InvariantChecker().arm()


def test_waive_rejects_unknown_invariant():
    with pytest.raises(ConfigurationError):
        InvariantChecker().waive("no-such-invariant", "because")


def test_strict_checker_fails_the_run_on_violation():
    checker = InvariantChecker(strict=True)
    scheduler = VSyncScheduler(
        make_animation(light_params(), "inv-strict", duration_ms=200),
        PIXEL_5,
        buffer_count=3,
        verify=checker,
    )
    checker._record("present-once", 0, "synthetic violation for the test")
    with pytest.raises(InvariantViolationError, match="present-once"):
        scheduler.run()


def test_relaxed_checker_records_without_raising():
    checker = InvariantChecker(strict=True)
    checker.relax("test exercises the evidence path")
    scheduler = VSyncScheduler(
        make_animation(light_params(), "inv-relaxed", duration_ms=200),
        PIXEL_5,
        buffer_count=3,
        verify=checker,
    )
    checker._record("present-once", 0, "synthetic violation for the test")
    result = scheduler.run()  # records, never raises
    verdict = result.extra["invariants"]
    assert verdict["violation_count"] == 1
    assert verdict["relaxed"] == "test exercises the evidence path"


def test_violation_wire_form_is_json_primitive():
    violation = Violation(invariant="queue-fifo", time=42, message="m")
    assert violation.to_wire() == ["queue-fifo", 42, "m"]


def test_ltpo_rate_switching_run_stays_clean():
    """A run that actually switches panel rates passes the full checker."""
    driver = AnimationDriver(
        "inv-ltpo",
        light_params(refresh_hz=120),
        duration_ns=ms(1200.0),
        curve=DecelerateCurve(rate=4.0),
    )
    scheduler = DVSyncScheduler(driver, MATE_60_PRO, DVSyncConfig(buffer_count=4))
    ltpo = LTPOController(scheduler.hw_vsync, max_hz=120)
    LTPOCoDesign(scheduler, ltpo, enforce_drain=True)
    result = scheduler.run()
    assert ltpo.current_hz < 120  # the rate really switched
    assert result.extra["invariants"]["violation_count"] == 0


def test_ltpo_ablation_waives_rate_bound_display():
    driver = AnimationDriver(
        "inv-ltpo-ablate",
        light_params(refresh_hz=120),
        duration_ns=ms(1200.0),
        curve=DecelerateCurve(rate=4.0),
    )
    scheduler = DVSyncScheduler(driver, MATE_60_PRO, DVSyncConfig(buffer_count=4))
    ltpo = LTPOController(scheduler.hw_vsync, max_hz=120)
    bridge = LTPOCoDesign(scheduler, ltpo, enforce_drain=False)
    result = scheduler.run()
    waived = result.extra["invariants"]["waived"]
    assert "rate-bound-display" in waived
    # The ablation produced the mismatches the waiver covers, and the
    # checker reported no *other* violations.
    assert bridge.rate_mismatched_presents > 0
    assert result.extra["invariants"]["violation_count"] == 0
