"""Cross-backend determinism: one spec, one wire form, any backend.

The executor's contract is that a result is a pure function of its spec.
These tests pin the strongest observable version of that claim: the
canonical-JSON wire form of a run — frames, presents, drops, extra
(including the invariant verdict riding via ``verify=True``) — is
byte-identical whether the run happened in this process or in a pool
worker with its own interpreter and its own process-wide switches.
"""

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.exec.executor import Executor
from repro.exec.serialize import result_to_wire
from repro.exec.spec import DriverSpec, RunSpec, canonical_json


def _spec(architecture: str) -> RunSpec:
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="determinism-wire",
            target_fdps=4.0,
            refresh_hz=60,
            duration_ms=400.0,
        ),
        device=PIXEL_5,
        architecture=architecture,
        buffer_count=3 if architecture == "vsync" else None,
        dvsync=DVSyncConfig(buffer_count=4) if architecture == "dvsync" else None,
        verify=True,
    )


def _wire_bytes(executor: Executor, spec: RunSpec) -> bytes:
    # Two distinct specs in the batch, or the process backend falls back to
    # in-process execution (it only pools batches of >1 pending specs).
    decoy = RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="determinism-decoy",
            target_fdps=2.0,
            refresh_hz=60,
            duration_ms=200.0,
        ),
        device=PIXEL_5,
        architecture="vsync",
        buffer_count=3,
    )
    result = executor.map([spec, decoy])[0]
    return canonical_json(result_to_wire(result)).encode("utf-8")


@pytest.mark.parametrize("architecture", ["vsync", "dvsync"])
def test_inprocess_and_pool_wire_forms_are_byte_identical(architecture):
    spec = _spec(architecture)
    with Executor(jobs=1, backend="inprocess", cache=False) as local:
        local_bytes = _wire_bytes(local, spec)
    with Executor(jobs=2, backend="process", cache=False) as pooled:
        pooled_bytes = _wire_bytes(pooled, spec)
    assert local_bytes == pooled_bytes


def test_repeat_inprocess_runs_are_byte_identical():
    spec = _spec("dvsync")
    with Executor(jobs=1, backend="inprocess", cache=False) as executor:
        first = _wire_bytes(executor, spec)
        second = _wire_bytes(executor, spec)
    assert first == second
