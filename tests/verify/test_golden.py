"""Tests for the golden-trace corpus and its refresh tooling."""

import importlib.util
import json
import pathlib

from repro.exec.executor import Executor
from repro.verify.golden import (
    check_goldens,
    default_golden_dir,
    golden_specs,
    run_digest,
    write_goldens,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_update_goldens():
    path = REPO_ROOT / "scripts" / "update_goldens.py"
    spec = importlib.util.spec_from_file_location("update_goldens_script", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _executor():
    return Executor(jobs=1, cache=False)


def test_digest_detects_single_frame_perturbation():
    spec = golden_specs()["dvsync-steady-60"]
    with _executor() as executor:
        result = executor.run(spec)
    baseline = run_digest(result)
    victim = result.presented_frames[len(result.presented_frames) // 2]
    victim.present_time += 1  # one nanosecond, one frame
    assert run_digest(result) != baseline


def test_digest_ignores_sub_rounding_float_noise():
    spec = golden_specs()["dvsync-steady-60"]
    with _executor() as executor:
        result = executor.run(spec)
    baseline = run_digest(result)
    frame = result.presented_frames[0]
    frame.content_value += 1e-9  # below the 6-decimal rounding floor
    assert run_digest(result) == baseline


def test_corpus_round_trips_through_write_and_check(tmp_path):
    with _executor() as executor:
        paths = write_goldens(tmp_path, executor=executor)
        assert len(paths) == len(golden_specs())
        report = check_goldens(tmp_path, executor=executor)
    assert report.passed, report.render()


def test_check_reports_missing_goldens(tmp_path):
    with _executor() as executor:
        report = check_goldens(tmp_path, executor=executor)
    assert not report.passed
    assert {entry.status for entry in report.entries} == {"missing"}


def _tamper(path: pathlib.Path, **updates):
    payload = json.loads(path.read_text())
    for key, value in updates.items():
        if callable(value):
            payload[key] = value(payload[key])
        else:
            payload[key] = value
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_check_reports_frame_level_drift(tmp_path):
    with _executor() as executor:
        write_goldens(tmp_path, executor=executor)
        _tamper(tmp_path / "vsync-steady-60.json", digest="0" * 64)
        report = check_goldens(tmp_path, executor=executor)
    entry = next(e for e in report.entries if e.name == "vsync-steady-60")
    assert entry.status == "drift"
    assert "frame-level drift" in entry.detail
    assert not report.passed


def test_check_diffs_summary_dimensions(tmp_path):
    with _executor() as executor:
        write_goldens(tmp_path, executor=executor)
        _tamper(
            tmp_path / "dvsync-droppy-60.json",
            digest="0" * 64,
            summary=lambda s: {**s, "presents": s["presents"] + 3},
        )
        report = check_goldens(tmp_path, executor=executor)
    entry = next(e for e in report.entries if e.name == "dvsync-droppy-60")
    assert entry.status == "drift"
    assert "presents:" in entry.detail


def test_check_reports_stale_spec(tmp_path):
    with _executor() as executor:
        write_goldens(tmp_path, executor=executor)
        _tamper(tmp_path / "dvsync-bursty-90.json", spec_hash="f" * 64)
        report = check_goldens(tmp_path, executor=executor)
    entry = next(e for e in report.entries if e.name == "dvsync-bursty-90")
    assert entry.status == "stale-spec"


def test_update_goldens_script_round_trips(tmp_path):
    script = _load_update_goldens()
    assert script.main(["--dir", str(tmp_path)]) == 0
    assert script.main(["--check", "--dir", str(tmp_path)]) == 0
    _tamper(tmp_path / "vsync-droppy-60.json", digest="0" * 64)
    assert script.main(["--check", "--dir", str(tmp_path)]) == 1


def test_committed_corpus_tracks_the_registry():
    """Every registered spec has a committed golden with a current spec hash.

    This is the cheap (no-simulation) staleness guard; the CI verify job
    runs the full digest comparison.
    """
    directory = default_golden_dir()
    for name, spec in golden_specs().items():
        path = directory / f"{name}.json"
        assert path.is_file(), f"{path} missing — run scripts/update_goldens.py"
        payload = json.loads(path.read_text())
        assert payload["spec_hash"] == spec.content_hash(), (
            f"{name}: registry spec changed without regenerating the corpus"
        )
