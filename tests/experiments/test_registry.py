"""Tests for the experiment registry."""

import pytest

from repro.errors import ReproError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment


def test_every_paper_artifact_registered():
    expected = {
        "fig01", "fig03", "fig04", "fig05", "fig06", "fig07", "fig09",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        "tab01", "tab02", "cost", "power", "chromium", "appendix", "dvfs",
        "ablations", "headline",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_raises():
    with pytest.raises(ReproError):
        run_experiment("fig99")


def test_run_experiment_returns_result():
    result = run_experiment("tab01")
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == "tab01"


def test_render_contains_comparisons():
    rendered = run_experiment("fig03").render()
    assert "paper vs measured" in rendered
    assert "growth factor" in rendered


def test_measured_lookup():
    result = run_experiment("fig01", quick=True)
    assert isinstance(result.measured("frames within 1 VSync period (%)"), float)
    with pytest.raises(KeyError):
        result.measured("nonexistent metric")
