"""Quick-mode smoke tests: every experiment runs and keeps the paper's shape.

These intentionally use ``quick=True`` (subsets, fewer repetitions); the
full-fidelity bands live in tests/integration/test_paper_claims.py.
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, quick=True)
        return cache[experiment_id]

    return get


def test_fig01_power_law_shape(results):
    result = results("fig01")
    within_one = result.measured("frames within 1 VSync period (%)")
    beyond_two = result.measured("frames beyond 2 VSync periods (%)")
    assert 70 <= within_one <= 86
    assert 2 <= beyond_two <= 9


def test_fig05_vulkan_worst_average(results):
    result = results("fig05")
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["Mate 60 Pro (OH 120Hz, Vulkan)"] > rows["Pixel 5 (AOSP 60Hz, GLES)"]


def test_fig06_stuffing_dominates(results):
    result = results("fig06")
    assert result.measured("stuffed frames dominate (avg %, paper: 'most frames')") > 50


def test_fig07_ball_lag(results):
    result = results("fig07")
    assert result.measured("VSync max lag (px)") > 150


def test_fig11_dvsync_wins_and_scales_with_buffers(results):
    result = results("fig11")
    vsync = result.measured("avg FDPS, VSync 3 bufs")
    dv4 = result.measured("avg FDPS, D-VSync 4 bufs")
    dv7 = result.measured("avg FDPS, D-VSync 7 bufs")
    assert dv4 < vsync
    assert dv7 <= dv4


def test_fig12_vulkan_reduction(results):
    result = results("fig12")
    assert result.measured("FDPS reduction (%)") > 55


def test_fig13_both_devices_improve(results):
    result = results("fig13")
    assert result.measured("Mate 40 Pro FDPS reduction (%)") > 40
    assert result.measured("Mate 60 Pro FDPS reduction (%)") > 35


def test_fig14_games_improve(results):
    result = results("fig14")
    assert result.measured("FDPS reduction, 4 bufs (%)") > 40
    assert result.measured("FDPS reduction, 5 bufs (%)") >= result.measured(
        "FDPS reduction, 4 bufs (%)"
    )


def test_fig15_latency_reduction_band(results):
    result = results("fig15")
    assert 20 <= result.measured("avg latency reduction (%)") <= 45


def test_fig16_map_case(results):
    result = results("fig16")
    assert result.measured("zoom FDPS reduction (%)") > 85
    assert result.measured("ZDP execution per frame (µs)") == pytest.approx(151.6, abs=1)


def test_tab02_stutters_reduced(results):
    result = results("tab02")
    assert result.measured("avg stutter reduction (%)") > 50


def test_cost_overhead_share(results):
    result = results("cost")
    assert result.measured("FPE+DTV per frame (µs)") == pytest.approx(102.6, abs=1)
    assert result.measured("share of 120 Hz period (%)") < 2.0


def test_power_increase_below_one_percent(results):
    result = results("power")
    assert 0 <= result.measured("end-to-end power increase (%)") < 1.0
    assert result.measured("power increase with ZDP (%)") >= result.measured(
        "end-to-end power increase (%)"
    )


def test_chromium_case(results):
    result = results("chromium")
    assert result.measured("FDPS reduction (%)") > 80


def test_ablations_shapes(results):
    result = results("ablations")
    assert result.measured("no-DTV error vs DTV error (ratio)") > 2
    assert result.measured("curve fitting beats hold-last (error ratio)") < 1
    assert result.measured("co-design mismatches") == 0
    assert result.measured("no-co-design mismatches") > 0


def test_fig09_scope_coverage(results):
    result = results("fig09")
    assert result.measured("frames actually pre-rendered (%)") > 85


def test_fig10_execution_patterns(results):
    result = results("fig10")
    assert result.measured("VSync janks from the long frame") >= 2
    assert result.measured("D-VSync janks from the long frame") == 0


def test_appendix_reference_benchmark(results):
    result = results("appendix")
    assert float(result.measured("suite-wide FDPS reduction (%)")) > 40


def test_fig04_feature_trend(results):
    result = results("fig04")
    assert result.measured("catalog size") == 54


def test_pipeline_flavor_ablation():
    from repro.experiments.ablations import run_pipeline_flavor

    result = run_pipeline_flavor(quick=True)
    ratio = result.measured("OH/Android baseline FDPS ratio")
    assert 0.5 < ratio < 2.0
    assert result.measured("VSync-rs edge slips observed") > 0


def test_dvfs_extension_case(results):
    result = results("dvfs")
    assert result.measured("extra energy saved by the larger window (pp)") > 0
    assert result.measured("drops stay lower than governed VSync") == "yes"
