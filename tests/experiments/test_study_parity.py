"""Refactor-parity goldens: the study layer changed *how* experiments run,
not *what* they produce.

The JSON files under ``tests/golden/experiments/`` were captured from the
pre-refactor (serial ``compare_scenario`` loop) implementations with
``run(runs=2, quick=True)``; every element is stored ``str()``-ed so float
formatting is compared exactly. The refactored modules must reproduce the
same rows and the same ``(metric, paper, measured)`` comparison triples —
the study layer may *add* a spread column (a 4th tuple element), but the
first three must match byte for byte.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import fig11_apps_fdps, fig14_games, tab02_stutters

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden" / "experiments"

MODULES = {
    "fig11": fig11_apps_fdps,
    "fig14": fig14_games,
    "tab02": tab02_stutters,
}


def _golden(experiment_id: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{experiment_id}_quick.json").read_text())


@pytest.fixture(scope="module")
def quick_results():
    return {
        key: module.run(runs=2, quick=True) for key, module in MODULES.items()
    }


@pytest.mark.parametrize("experiment_id", sorted(MODULES))
def test_rows_identical_to_pre_refactor(quick_results, experiment_id):
    golden = _golden(experiment_id)
    result = quick_results[experiment_id]
    assert result.experiment_id == golden["experiment_id"]
    assert result.title == golden["title"]
    assert result.headers == golden["headers"]
    assert [[str(x) for x in row] for row in result.rows] == golden["rows"]


@pytest.mark.parametrize("experiment_id", sorted(MODULES))
def test_comparisons_identical_to_pre_refactor(quick_results, experiment_id):
    golden = _golden(experiment_id)
    result = quick_results[experiment_id]
    triples = [[str(x) for x in comparison[:3]] for comparison in result.comparisons]
    assert triples == golden["comparisons"]


def test_goldens_predate_the_spread_column():
    # The stdev column is new in the study layer; the goldens must not have
    # absorbed it, or the parity check would stop guarding the refactor.
    for experiment_id in MODULES:
        for comparison in _golden(experiment_id)["comparisons"]:
            assert len(comparison) == 3
