"""Tests for the shared experiment runner."""

import pytest

from repro.core.config import DVSyncConfig
from repro.display.device import PIXEL_5
from repro.errors import ConfigurationError
from repro.experiments.runner import compare_scenario, run_driver
from repro.testing import light_params, make_animation
from repro.workloads.scenarios import Scenario


def test_run_driver_architecture_dispatch():
    vsync_result = run_driver(
        make_animation(light_params(), "run-a"), PIXEL_5, "vsync", buffer_count=3
    )
    dvsync_result = run_driver(
        make_animation(light_params(), "run-b"), PIXEL_5, "dvsync",
        dvsync_config=DVSyncConfig(buffer_count=4),
    )
    assert vsync_result.scheduler == "vsync"
    assert dvsync_result.scheduler == "dvsync"


def test_run_driver_unknown_architecture():
    with pytest.raises(ConfigurationError, match="unknown architecture 'gsync'"):
        run_driver(make_animation(light_params(), "run-c"), PIXEL_5, "gsync")


def test_compare_scenario_pairs_seeds():
    scenario = Scenario(
        name="runner-pair", description="", refresh_hz=60, target_vsync_fdps=2.0,
        bursts=6,
    )
    comparison = compare_scenario(scenario, PIXEL_5, vsync_buffers=3, runs=2)
    assert comparison.scenario == "runner-pair"
    assert len(comparison.vsync_results) == len(comparison.dvsync_results) == 2
    # Paired seeds: frame i has identical workloads in both arms.
    vsync_frames = comparison.vsync_results[0].frames
    dvsync_frames = comparison.dvsync_results[0].frames
    common = min(len(vsync_frames), len(dvsync_frames))
    assert [f.workload for f in vsync_frames[:common]] == [
        f.workload for f in dvsync_frames[:common]
    ]


def test_comparison_reduction_properties():
    scenario = Scenario(
        name="runner-red", description="", refresh_hz=60, target_vsync_fdps=3.0,
        bursts=8,
    )
    comparison = compare_scenario(scenario, PIXEL_5, vsync_buffers=3, runs=2)
    assert 0 <= comparison.fdps_reduction_percent <= 100
    assert comparison.dvsync_latency_ms < comparison.vsync_latency_ms


def test_zero_baseline_reductions_are_zero():
    from repro.experiments.runner import ScenarioComparison

    comparison = ScenarioComparison(
        scenario="zero", vsync_fdps=0.0, dvsync_fdps=0.0,
        vsync_latency_ms=0.0, dvsync_latency_ms=0.0,
        vsync_results=[], dvsync_results=[],
    )
    assert comparison.fdps_reduction_percent == 0.0
    assert comparison.latency_reduction_percent == 0.0
