"""Tests for the experiment base types."""

import pytest

from repro.experiments.base import ExperimentResult, mean, pct_reduction


def make_result():
    return ExperimentResult(
        experiment_id="figX",
        title="Example",
        headers=["a", "b"],
        rows=[[1, 2.5]],
        comparisons=[("metric", 10, 9.5)],
        notes="note text",
    )


def test_render_includes_all_sections():
    rendered = make_result().render()
    assert "=== figX: Example ===" in rendered
    assert "paper vs measured" in rendered
    assert "note text" in rendered
    assert "2.50" in rendered


def test_render_without_rows_or_notes():
    result = ExperimentResult(
        experiment_id="y", title="t", headers=[], rows=[], comparisons=[]
    )
    assert result.render() == "=== y: t ==="


def test_measured_lookup():
    assert make_result().measured("metric") == 9.5
    with pytest.raises(KeyError):
        make_result().measured("other")


def test_mean_handles_empty():
    assert mean([]) == 0.0
    assert mean([1, 2, 3]) == 2.0


def test_pct_reduction():
    assert pct_reduction(4.0, 1.0) == 75.0
    assert pct_reduction(0.0, 1.0) == 0.0
