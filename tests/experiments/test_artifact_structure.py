"""Structural checks: each experiment prints the rows its paper artifact has."""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def quick():
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, quick=True)
        return cache[experiment_id]

    return get


def test_fig03_rows_cover_every_flagship(quick):
    from repro.display.trend import FLAGSHIP_DATASET

    assert len(quick("fig03").rows) == len(FLAGSHIP_DATASET)


def test_fig05_has_four_configurations(quick):
    assert len(quick("fig05").rows) == 4


def test_fig11_row_per_app_with_buffer_sweep(quick):
    result = quick("fig11")
    assert result.headers == [
        "app", "vsync 3buf", "dvsync 4buf", "dvsync 5buf", "dvsync 7buf",
    ]
    for row in result.rows:
        assert len(row) == 5


def test_fig12_rows_follow_figure_order(quick):
    result = quick("fig12")
    names = [row[0] for row in result.rows]
    from repro.workloads.os_cases import os_case_scenarios

    expected = [s.name for s in os_case_scenarios("mate60-vulkan")][::4]
    assert names == expected


def test_fig14_rows_carry_rate_labels(quick):
    for row in quick("fig14").rows:
        assert "Hz" in row[0]


def test_fig15_rows_per_device(quick):
    devices = [row[0] for row in quick("fig15").rows]
    assert devices == ["Google Pixel 5", "Mate 40 Pro", "Mate 60 Pro"]


def test_tab01_is_table_one(quick):
    result = quick("tab01")
    assert len(result.rows) == 4
    assert result.headers[0] == "device"


def test_tab02_quick_mode_runs_first_tasks(quick):
    result = quick("tab02")
    assert len(result.rows) == 4  # quick mode trims the task list


def test_every_comparison_has_three_fields(quick):
    for experiment_id in ("fig01", "fig07", "fig16", "cost", "power"):
        for comparison in quick(experiment_id).comparisons:
            assert len(comparison) == 3


def test_experiment_ids_match_registry_keys(quick):
    for experiment_id in ("fig01", "fig03", "tab01"):
        assert quick(experiment_id).experiment_id == experiment_id
