"""Hypothesis properties for the resource governor's determinism contract.

The governance layer is only sound if a budget is a *pure policy overlay*:
any event budget below a spec's natural event count must fail the run with
kind ``budget`` at exactly the capped event (same trip, every time), and
lifting the budget must restore the byte-identical unbudgeted result — a
budget can end a run early, never change what it computes.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.errors import BudgetExceededError
from repro.exec.executor import Executor, execute_spec
from repro.exec.governor import ResourceBudget, measure_run_events
from repro.exec.serialize import normalize_result, result_to_wire
from repro.exec.spec import DriverSpec, RunSpec


def _spec(device, architecture, target_fdps, duration_ms):
    kwargs = (
        {"dvsync": DVSyncConfig(buffer_count=4)}
        if architecture == "dvsync"
        else {"buffer_count": 3}
    )
    return RunSpec(
        driver=DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name=f"prop-governor-{target_fdps:g}-{duration_ms:g}",
            target_fdps=target_fdps,
            duration_ms=duration_ms,
        ),
        device=device,
        architecture=architecture,
        **kwargs,
    )


@settings(max_examples=10, deadline=None)
@given(
    device=st.sampled_from([PIXEL_5, MATE_60_PRO]),
    architecture=st.sampled_from(["vsync", "dvsync"]),
    target_fdps=st.sampled_from([2.0, 4.0, 8.0]),
    duration_ms=st.sampled_from([60.0, 90.0, 150.0]),
    cap_fraction=st.floats(min_value=0.05, max_value=0.95),
)
def test_any_event_budget_below_natural_count_trips_deterministically(
    device, architecture, target_fdps, duration_ms, cap_fraction
):
    spec = _spec(device, architecture, target_fdps, duration_ms)
    baseline = result_to_wire(normalize_result(execute_spec(spec)))
    natural = measure_run_events(spec)
    assert natural >= 2, "generated runs must be long enough to budget"
    cap = max(1, min(natural - 1, round(natural * cap_fraction)))
    capped = dataclasses.replace(spec, budget=ResourceBudget(max_events=cap))

    with pytest.raises(BudgetExceededError) as excinfo:
        execute_spec(capped)
    message = str(excinfo.value)
    assert f"max_events={cap} at " in message  # tripped at exactly the cap

    # the same trip settles as a structured, never-retried budget failure
    with Executor(jobs=1, policy="keep-going", retries=0) as executor:
        outcome = executor.map_outcome([capped])
    (failure,) = outcome.failures
    assert failure.kind == "budget"
    assert failure.attempts == 1
    assert failure.message == message  # identical trip on the rerun

    # lifting the budget restores the byte-identical unbudgeted result
    relaxed = dataclasses.replace(capped, budget=None)
    assert result_to_wire(normalize_result(execute_spec(relaxed))) == baseline


@settings(max_examples=8, deadline=None)
@given(
    duration_ms=st.sampled_from([90.0, 150.0]),
    fraction=st.floats(min_value=0.1, max_value=0.9),
)
def test_any_sim_time_budget_inside_the_run_trips_at_its_deadline(
    duration_ms, fraction
):
    spec = _spec(PIXEL_5, "vsync", 4.0, duration_ms)
    max_ns = max(1, int(duration_ms * 1e6 * fraction))
    capped = dataclasses.replace(spec, budget=ResourceBudget(max_sim_ns=max_ns))
    with pytest.raises(BudgetExceededError) as first:
        execute_spec(capped)
    with pytest.raises(BudgetExceededError) as second:
        execute_spec(capped)
    assert f"max_sim_ns={max_ns}" in str(first.value)
    assert str(first.value) == str(second.value)
