"""Property-based tests over whole scheduler runs.

Hypothesis drives both architectures with small random workload traces; the
invariants below must hold for *any* workload, not just calibrated ones.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.config import DVSyncConfig
from repro.core.dvsync import DVSyncScheduler
from repro.display.device import PIXEL_5
from repro.pipeline.frame import FrameWorkload
from repro.units import hz_to_period
from repro.vsync.scheduler import VSyncScheduler
from repro.workloads.drivers import TraceDriver
from repro.workloads.frametrace import FrameTrace

PERIOD = hz_to_period(60)

# Per-frame times between 0.1 ms and ~3 periods, in microseconds.
frame_times = st.tuples(
    st.integers(min_value=100, max_value=8_000),  # ui µs
    st.integers(min_value=100, max_value=50_000),  # render µs
)
traces = st.lists(frame_times, min_size=3, max_size=40)


def build_driver(times):
    workloads = [
        FrameWorkload(ui_ns=ui * 1000, render_ns=render * 1000)
        for ui, render in times
    ]
    return TraceDriver(FrameTrace(name="prop", refresh_hz=60, workloads=workloads))


def run_both(times):
    baseline = VSyncScheduler(build_driver(times), PIXEL_5, buffer_count=3).run()
    improved = DVSyncScheduler(
        build_driver(times), PIXEL_5, DVSyncConfig(buffer_count=4)
    ).run()
    return baseline, improved


@given(traces)
@settings(max_examples=30, deadline=None)
def test_all_triggered_frames_display_in_fifo_order(times):
    for result in run_both(times):
        assert all(frame.presented for frame in result.frames)
        ids = [p.frame_id for p in result.presents]
        assert ids == sorted(ids)
        present_times = [p.present_time for p in result.presents]
        assert present_times == sorted(present_times)
        assert len(set(present_times)) == len(present_times)  # one per edge


@given(traces)
@settings(max_examples=30, deadline=None)
def test_lifecycle_timestamps_monotone_per_frame(times):
    for result in run_both(times):
        for frame in result.frames:
            assert frame.trigger_time <= frame.ui_start <= frame.ui_end
            assert frame.ui_end <= frame.render_start <= frame.render_end
            assert frame.render_end <= frame.queued_time
            assert frame.queued_time <= frame.latch_time < frame.present_time


@given(traces)
# Regression pin: at trace exhaustion D-VSync displayed *fewer* distinct
# frames than the baseline (9 vs 10), which left the old "extra frames only"
# credit at zero while pre-rendering had shifted the ~2-period frame onto an
# empty queue — one jank the lockstep baseline happened to dodge.
@example(
    [
        (537, 16634), (537, 16634), (3854, 3623), (3112, 6096), (123, 2242),
        (581, 1260), (5129, 214), (241, 29016), (659, 351), (3885, 130),
    ]
)
@settings(max_examples=30, deadline=None)
def test_dvsync_never_more_drops_per_displayed_frame(times):
    baseline, improved = run_both(times)
    # Decoupling adds slack, but it also changes *which* distinct frames
    # reach the screen: it renders frames the lockstep baseline skipped
    # outright, and near trace exhaustion it can elide trailing frames the
    # baseline displayed — either way the surrounding timeline shifts, and
    # each displaced frame can itself stall several periods. The fair
    # invariant: D-VSync may not jank more once credited for the worst-case
    # cost of the frames whose display differs between the two architectures.
    differing_frames = abs(len(improved.presents) - len(baseline.presents))
    budget = 0
    if differing_frames:
        import math

        worst_workloads = sorted(
            (frame.workload.total_ns for frame in improved.frames),
            reverse=True,
        )[:differing_frames]
        budget = sum(math.ceil(w / PERIOD) for w in worst_workloads)
    assert len(improved.effective_drops) <= len(baseline.effective_drops) + budget


@given(traces)
@settings(max_examples=30, deadline=None)
def test_dvsync_d_timestamps_strictly_increase(times):
    _, improved = run_both(times)
    stamps = [f.content_timestamp for f in improved.frames if f.decoupled]
    assert all(b > a for a, b in zip(stamps, stamps[1:]))


@given(traces)
@settings(max_examples=30, deadline=None)
def test_latch_happens_on_vsync_edges(times):
    for result in run_both(times):
        for frame in result.presented_frames:
            # Integer period rounding leaves at most 1 ns of phase error
            # per accumulated period.
            phase = frame.latch_time % PERIOD
            assert phase <= len(result.frames) + 60 or PERIOD - phase <= len(result.frames) + 60


@given(traces)
@settings(max_examples=20, deadline=None)
def test_runs_are_deterministic(times):
    first, _ = run_both(times)
    second, _ = run_both(times)
    assert [f.present_time for f in first.frames] == [
        f.present_time for f in second.frames
    ]
