"""Property tests for the fault x verification interaction.

Injected faults must surface through the invariant checker as *recorded
evidence* — never as a harness crash and never as a strict-mode failure:
the injector relaxes the checker precisely because a fault run is expected
to break runtime invariants. The suite-wide strict switch (see
``tests/conftest.py``) is live here, so any hole in that relaxation story
fails these tests loudly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultSchedule, spec
from repro.testing import (
    make_animation,
    run_dvsync_faulted,
    run_vsync_faulted,
)
from repro.workloads.distributions import params_for_target_fdps

#: One representative clause per registered fault model.
FAULT_MODELS = {
    "vsync-jitter": spec("vsync-jitter", sigma_us=500, drop_prob=0.1),
    "thermal": spec("thermal", factor=2.5, start_ms=50, end_ms=250),
    "buffer-pressure": spec("buffer-pressure", deny_prob=0.4),
    "input-loss": spec("input-loss", drop_prob=0.2),
    "callback-crash": spec("callback-crash", prob=0.3),
}


def _driver(name: str):
    return make_animation(
        params_for_target_fdps(3.0, 60), f"verify-fault-{name}", duration_ms=300
    )


@given(
    st.sampled_from(sorted(FAULT_MODELS)),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_faulted_runs_complete_with_a_relaxed_checker(model, seed):
    """Any fault model, any seed: the run completes and the checker reports.

    The strict process-wide switch is on, so this property also proves the
    injector's relaxation reaches the checker before any violation could
    abort the run.
    """
    schedule = FaultSchedule([FAULT_MODELS[model]])
    for runner in (run_vsync_faulted, run_dvsync_faulted):
        result = runner(_driver(model), schedule, seed=seed)
        verdict = result.extra["invariants"]
        assert verdict["relaxed"] is not None
        assert verdict["checked"] > 0
        assert verdict["violation_count"] >= 0
        assert len(verdict["violations"]) <= verdict["violation_count"]
        for invariant, time, message in verdict["violations"]:
            assert isinstance(invariant, str) and invariant
            assert isinstance(time, int)
            assert isinstance(message, str) and message


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=8, deadline=None)
def test_vsync_jitter_surfaces_as_calibration_evidence(seed):
    """HW-VSync jitter knocks D-VSync presents off the grid — and the
    checker records exactly that as dtv-grid-calibration violations."""
    schedule = FaultSchedule([spec("vsync-jitter", sigma_us=800)])
    result = run_dvsync_faulted(_driver(f"jitter-{seed}"), schedule, seed=seed)
    verdict = result.extra["invariants"]
    kinds = {violation[0] for violation in verdict["violations"]}
    if verdict["violation_count"] > 0:
        assert kinds <= {"dtv-grid-calibration", "dts-monotone", "dts-future-slot"}


def test_clean_schedule_leaves_checker_strict():
    """FaultSchedule.none() injects nothing, so it must not relax."""
    result = run_vsync_faulted(_driver("none"), FaultSchedule.none(), seed=0)
    assert result.extra["invariants"]["relaxed"] is None
