"""Property tests for the fault layer: determinism and zero-fault identity."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.schedule import FaultSchedule, spec
from repro.testing import (
    light_params,
    make_animation,
    run_dvsync,
    run_dvsync_faulted,
    run_vsync,
    run_vsync_faulted,
)

SCHEDULES = {
    "jitter": FaultSchedule([spec("vsync-jitter", sigma_us=400, drop_prob=0.05)]),
    "thermal": FaultSchedule([spec("thermal", factor=2.0, start_ms=50, end_ms=150)]),
    "pressure": FaultSchedule([spec("buffer-pressure", deny_prob=0.3)]),
    "crash": FaultSchedule([spec("callback-crash", prob=0.2)]),
    "standard": FaultSchedule.standard(),
}


def fingerprint(result):
    """Everything observable about a run, as one comparable value."""
    return (
        [dataclasses.astuple(f) for f in result.frames],
        [dataclasses.astuple(p) for p in result.presents],
        [dataclasses.astuple(d) for d in result.drops],
        result.start_time,
        result.end_time,
        result.ui_busy_ns,
        result.render_busy_ns,
        result.gpu_busy_ns,
        sorted(result.extra.items(), key=lambda kv: kv[0]),
    )


@given(
    st.sampled_from(sorted(SCHEDULES)),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=8, deadline=None)
def test_same_scenario_same_fault_seed_identical_run(name, seed):
    schedule = SCHEDULES[name]
    first = run_vsync_faulted(
        make_animation(light_params(), duration_ms=250.0), schedule, seed=seed
    )
    second = run_vsync_faulted(
        make_animation(light_params(), duration_ms=250.0), schedule, seed=seed
    )
    assert fingerprint(first) == fingerprint(second)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=5, deadline=None)
def test_same_fault_seed_identical_dvsync_run(seed):
    first = run_dvsync_faulted(
        make_animation(light_params(), duration_ms=250.0),
        FaultSchedule.standard(),
        seed=seed,
    )
    second = run_dvsync_faulted(
        make_animation(light_params(), duration_ms=250.0),
        FaultSchedule.standard(),
        seed=seed,
    )
    assert fingerprint(first) == fingerprint(second)


def strip_fault_keys(fp):
    frames, presents, drops, start, end, ui, render, gpu, extra = fp
    extra = [(k, v) for k, v in extra if k not in ("faults", "watchdog")]
    return frames, presents, drops, start, end, ui, render, gpu, extra


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=5, deadline=None)
def test_zero_fault_schedule_identical_to_no_injector_vsync(seed):
    clean = run_vsync(make_animation(light_params(), duration_ms=250.0))
    faulted = run_vsync_faulted(
        make_animation(light_params(), duration_ms=250.0),
        FaultSchedule.none(),
        seed=seed,
    )
    info = faulted.extra["faults"]
    assert info["injected_total"] == 0
    assert strip_fault_keys(fingerprint(faulted)) == strip_fault_keys(
        fingerprint(clean)
    )


def test_zero_fault_schedule_identical_to_no_injector_dvsync():
    """An attached-but-empty injector must not perturb D-VSync either.

    The watchdog is left off here: this isolates the injector's identity
    property (the watchdog may legitimately flip the runtime switch).
    """
    from repro.faults.injector import FaultInjector
    from repro.core.config import DVSyncConfig
    from repro.core.dvsync import DVSyncScheduler
    from repro.display.device import PIXEL_5

    clean = run_dvsync(make_animation(light_params(), duration_ms=400.0))
    scheduler = DVSyncScheduler(
        make_animation(light_params(), duration_ms=400.0),
        PIXEL_5,
        DVSyncConfig(buffer_count=4),
    )
    FaultInjector(FaultSchedule.none()).attach(scheduler)
    faulted = scheduler.run()
    assert strip_fault_keys(fingerprint(faulted)) == strip_fault_keys(
        fingerprint(clean)
    )
