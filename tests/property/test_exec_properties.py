"""Property tests for the execution layer's content-addressing contract.

The executor's cache is only sound if (1) equal specs hash equally and run
to bit-identical results, (2) any semantically distinct knob — seed, fault
clause, device, architecture — perturbs the hash, and (3) a cache hit is
indistinguishable from a fresh simulation. These tests sweep those claims
over a small grid of spec shapes.
"""

import dataclasses
import itertools
import json

from repro.core.config import DVSyncConfig
from repro.display.device import MATE_60_PRO, PIXEL_5
from repro.exec.executor import Executor, execute_spec
from repro.exec.serialize import normalize_result, result_to_wire
from repro.exec.spec import DriverSpec, RunSpec

FAULT_CLAUSES = (
    None,
    "vsync-jitter(sigma_us=300)",
    "vsync-jitter(sigma_us=300);input-loss(drop_prob=0.05)",
)


def _grid():
    """A spread of distinct spec shapes across both architectures."""
    specs = []
    for device, faults, seed in itertools.product(
        (PIXEL_5, MATE_60_PRO), FAULT_CLAUSES, (0, 1)
    ):
        driver = DriverSpec.of(
            "repro.exec.builders:burst_animation",
            name="prop-exec",
            target_fdps=2.0,
        )
        specs.append(
            RunSpec(
                driver=driver, device=device, architecture="vsync",
                buffer_count=3, faults=faults, fault_seed=seed,
            )
        )
        specs.append(
            RunSpec(
                driver=driver, device=device, architecture="dvsync",
                dvsync=DVSyncConfig(buffer_count=4), faults=faults,
                fault_seed=seed,
            )
        )
    return specs


def test_equal_specs_hash_equally_and_rerun_identically():
    for spec in _grid()[:4]:
        clone = RunSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
        assert clone.content_hash() == spec.content_hash()
        first = result_to_wire(normalize_result(execute_spec(spec)))
        second = result_to_wire(normalize_result(execute_spec(clone)))
        assert first == second, spec.describe()


def test_distinct_specs_hash_distinctly():
    specs = _grid()
    hashes = [spec.content_hash() for spec in specs]
    assert len(set(hashes)) == len(specs)


def test_seed_and_fault_clause_perturb_the_hash():
    base = _grid()[0]
    reseeded = dataclasses.replace(base, fault_seed=base.fault_seed + 1)
    refaulted = dataclasses.replace(
        base, faults="thermal(factor=2.0,start_ms=0,end_ms=100)"
    )
    assert reseeded.content_hash() != base.content_hash()
    assert refaulted.content_hash() != base.content_hash()


def test_cache_hit_is_bit_identical_to_fresh_run(tmp_path):
    for spec in _grid()[:6]:
        with Executor(jobs=1, cache=True, cache_dir=tmp_path) as executor:
            fresh = executor.run(spec)
        with Executor(jobs=1, cache=True, cache_dir=tmp_path) as warm:
            cached = warm.run(spec)
            assert warm.stats.runs_executed == 0, spec.describe()
        assert result_to_wire(cached) == result_to_wire(fresh), spec.describe()


def test_deserialized_result_survives_double_round_trip():
    spec = _grid()[1]
    result = normalize_result(execute_spec(spec))
    wire = result_to_wire(result)
    text = json.dumps(wire, sort_keys=True)
    assert json.dumps(
        result_to_wire(normalize_result(result)), sort_keys=True
    ) == text
