"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphics.bufferqueue import BufferQueue
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.units import hz_to_period, period_to_hz
from repro.workloads.animations import CURVES
from repro.workloads.distributions import (
    PROFILES,
    FrameTimeParams,
    PowerLawFrameModel,
)


# --------------------------------------------------------------- simulator
@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_simulator_fires_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.booleans()), min_size=1, max_size=40
    )
)
def test_simulator_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for index, (t, cancel) in enumerate(entries):
        handles.append(
            (sim.schedule_at(t, lambda i=index: fired.append(i)), cancel, index)
        )
    for handle, cancel, _ in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = {index for _, cancel, index in handles if not cancel}
    assert set(fired) == expected


# ------------------------------------------------------------- buffer queue
class QueueMachine:
    """Random walk over the queue API that must never corrupt state."""

    def __init__(self, capacity):
        self.queue = BufferQueue(capacity=capacity, buffer_bytes=1024)
        self.dequeued = []
        self.frame_id = 0
        self.expected_fifo = []

    def step(self, action):
        if action == "dequeue":
            buffer = self.queue.try_dequeue()
            if buffer is not None:
                self.dequeued.append(buffer)
        elif action == "queue" and self.dequeued:
            buffer = self.dequeued.pop(0)
            self.queue.queue(
                buffer, frame_id=self.frame_id, content_timestamp=0,
                render_rate_hz=60, now=self.frame_id,
            )
            self.expected_fifo.append(self.frame_id)
            self.frame_id += 1
        elif action == "acquire" and self.queue.queued_depth:
            buffer = self.queue.acquire()
            assert buffer.frame_id == self.expected_fifo.pop(0)
        elif action == "cancel" and self.dequeued:
            self.queue.cancel(self.dequeued.pop())

    def check_invariants(self):
        states = [b.state.value for b in self.queue.slots]
        # Slot conservation: every slot is in exactly one state.
        assert len(states) == self.queue.capacity
        # At most one front buffer.
        assert states.count("acquired") <= 1
        # Queued FIFO matches the model.
        assert self.queue.queued_depth == len(self.expected_fifo)


@given(
    st.integers(min_value=2, max_value=7),
    st.lists(
        st.sampled_from(["dequeue", "queue", "acquire", "cancel"]),
        min_size=1,
        max_size=200,
    ),
)
def test_buffer_queue_state_machine_invariants(capacity, actions):
    machine = QueueMachine(capacity)
    for action in actions:
        machine.step(action)
        machine.check_invariants()


# ------------------------------------------------------------ distributions
@given(
    st.sampled_from(sorted(PROFILES)),
    st.floats(min_value=0.0, max_value=0.3),
    st.sampled_from([60, 90, 120]),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_workloads_always_nonnegative_and_bounded(profile, key_prob, hz, seed):
    params = FrameTimeParams(refresh_hz=hz, key_prob=key_prob, tail=PROFILES[profile])
    model = PowerLawFrameModel(params, SeededRng(seed))
    period = hz_to_period(hz)
    cap = period * (1.02 + PROFILES[profile].max_excess) + period
    for workload in model.generate(200):
        assert workload.ui_ns >= 0
        assert workload.render_ns >= 0
        assert workload.total_ns <= cap + period  # tail truncation holds


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25)
def test_same_seed_same_trace(seed):
    params = FrameTimeParams(refresh_hz=60, key_prob=0.05)
    a = PowerLawFrameModel(params, SeededRng(seed)).generate(50)
    b = PowerLawFrameModel(params, SeededRng(seed)).generate(50)
    assert a == b


# ------------------------------------------------------------------- curves
@given(
    st.sampled_from(sorted(CURVES)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_curves_bounded(name, u):
    value = CURVES[name].position(u)
    assert -0.5 <= value <= 1.5  # springs overshoot but stay bounded


@given(
    st.sampled_from(["linear", "ease-in-out", "decelerate"]),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_monotone_curves_order_preserving(name, u1, u2):
    curve = CURVES[name]
    low, high = min(u1, u2), max(u1, u2)
    assert curve.position(low) <= curve.position(high) + 1e-9


# -------------------------------------------------------------------- units
@given(st.integers(min_value=1, max_value=1000))
def test_hz_period_roundtrip(hz):
    assert abs(period_to_hz(hz_to_period(hz)) - hz) < 0.01
