"""Game-trace simulation, the paper's §6.1 methodology.

Records a synthetic CPU+GPU runtime trace for one game, saves it to JSON,
reloads it (proving traces are portable artifacts), and replays it through
both schedulers at the game's rendering rate, sweeping D-VSync buffer counts.

Run:  python examples/game_trace_replay.py
"""

from repro import MATE_60_PRO, Arch, SimConfig, TraceDriver, fdps, simulate
from repro.trace import schema
from repro.workloads.games import GAME_SPECS, record_game_trace


def main() -> None:
    spec = GAME_SPECS[0]  # Honor of Kings (UI), 60 Hz
    device = MATE_60_PRO.at_refresh(spec.refresh_hz)

    trace = record_game_trace(spec)
    stats = trace.stats()
    print(f"game: {spec.name} at {spec.refresh_hz} Hz, {len(trace)} frames")
    print(
        f"frame times: mean {stats['mean_ms']:.1f} ms, p99 {stats['p99_ms']:.1f} ms, "
        f"{stats['long_fraction'] * 100:.1f} % over one period\n"
    )

    path = "honor_of_kings.trace.json"
    schema.save(trace, path)
    trace = schema.load(path)
    print(f"trace round-tripped through {path}\n")

    baseline = simulate(
        TraceDriver(trace),
        device,
        architecture=Arch.VSYNC,
        config=SimConfig(buffer_count=3),
    )
    print(f"VSync 3 bufs : FDPS {fdps(baseline):.2f} "
          f"({len(baseline.effective_drops)} drops)")
    for buffers in (4, 5):
        result = simulate(
            TraceDriver(schema.load(path)),
            device,
            config=SimConfig(buffer_count=buffers),
        )
        reduction = (1 - fdps(result) / max(fdps(baseline), 1e-9)) * 100
        print(f"D-VSync {buffers} bufs: FDPS {fdps(result):.2f} "
              f"({reduction:5.1f} % reduction)")


if __name__ == "__main__":
    main()
