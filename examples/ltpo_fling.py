"""D-VSync x LTPO co-design (§5.3) on a decelerating fling.

A fling starts fast (120 Hz) and decelerates; the LTPO governor steps the
panel down through 90/60/30 Hz tiers. The co-design defers each switch until
D-VSync's accumulated buffers — rendered for the old rate — have been
consumed, so no frame is ever displayed at the wrong rate. Run with the
drain rule disabled to see the mismatches it prevents.

Run:  python examples/ltpo_fling.py
"""

from repro import (
    DVSyncConfig,
    DVSyncScheduler,
    LTPOCoDesign,
    LTPOController,
    MATE_60_PRO,
    SimConfig,
    simulate,
)
from repro.units import ms, to_ms
from repro.workloads.animations import DecelerateCurve
from repro.workloads.distributions import FrameTimeParams
from repro.workloads.drivers import AnimationDriver


def build_fling() -> AnimationDriver:
    params = FrameTimeParams(refresh_hz=120, key_prob=0.0)
    return AnimationDriver(
        "ltpo-fling",
        params,
        duration_ns=ms(1500),
        curve=DecelerateCurve(rate=4.0),
    )


def run_fling(enforce_drain: bool):
    # The co-design bridge attaches to the scheduler *before* the run, so
    # this arm constructs one explicitly instead of going through simulate().
    scheduler = DVSyncScheduler(
        build_fling(), MATE_60_PRO, DVSyncConfig(buffer_count=4)
    )
    ltpo = LTPOController(scheduler.hw_vsync, max_hz=120)
    bridge = LTPOCoDesign(scheduler, ltpo, enforce_drain=enforce_drain)
    result = scheduler.run()
    return result, ltpo, bridge


def main() -> None:
    pinned = simulate(
        build_fling(), MATE_60_PRO, config=SimConfig(buffer_count=4)
    )
    print("== fling with the panel pinned at 120 Hz (no LTPO) ==")
    print(f"  frame drops            : {len(pinned.effective_drops)}\n")
    for enforce in (True, False):
        label = "with co-design" if enforce else "WITHOUT co-design"
        result, ltpo, bridge = run_fling(enforce)
        print(f"== fling {label} ==")
        for when, old_hz, new_hz in ltpo.switch_log:
            print(f"  t={to_ms(when):7.1f} ms: {old_hz:3d} Hz -> {new_hz:3d} Hz")
        print(f"  deferred switches      : {bridge.deferred_switches}")
        print(f"  rate-mismatched frames : {bridge.rate_mismatched_presents}")
        print(f"  frame drops            : {len(result.effective_drops)}\n")


if __name__ == "__main__":
    main()
