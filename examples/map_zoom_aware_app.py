"""The decoupling-aware channel: a map app with a custom input predictor.

Reproduces the §6.5 case study end to end with the four aware-channel
capabilities: registering the Zooming Distance Predictor through the IPL,
configuring the pre-render limit, reading frame display times from the DTV,
and the runtime VSync/D-VSync switch.

Run:  python examples/map_zoom_aware_app.py
"""

from repro import Arch, SimConfig, simulate
from repro.apps.map_app import MapApp
from repro.display.device import PIXEL_5
from repro.units import to_ms


def main() -> None:
    app = MapApp(PIXEL_5)

    print("== zooming under VSync (baseline) ==")
    driver = app.build_zoom_driver()
    result = simulate(
        driver,
        PIXEL_5,
        architecture=Arch.VSYNC,
        config=SimConfig(buffer_count=3),
    )
    report = app.report(result, driver)
    print(f"  FDPS               {report.fdps:6.2f}")
    print(f"  mean latency       {report.mean_latency_ms:6.1f} ms")
    print(f"  mean pinch error   {report.prediction_error_mean:8.4f}\n")

    print("== zooming as a decoupling-aware app (ZDP + 5 buffers) ==")
    result, driver = app.run_dvsync()
    report = app.report(result, driver)
    print(f"  FDPS               {report.fdps:6.2f}")
    print(f"  mean latency       {report.mean_latency_ms:6.1f} ms")
    print(f"  mean pinch error   {report.prediction_error_mean:8.4f}")
    print(f"  ZDP cost/frame     {report.zdp_overhead_us_per_frame:6.1f} µs "
          "(paper: 151.6 µs)")
    print(f"  IPL predictions    {result.extra['ipl_predictions']}")

    # Peek at the DTV API the app uses for custom-defined animations.
    from repro.core.config import DVSyncConfig
    from repro.core.dvsync import DVSyncScheduler

    scheduler = DVSyncScheduler(
        app.build_zoom_driver(run=1), PIXEL_5, DVSyncConfig(buffer_count=5)
    )
    display = scheduler.api.get_frame_display_time()
    d_ts = scheduler.api.get_d_timestamp()
    print("\n== aware-channel DTV query (before the run starts) ==")
    print(f"  next frame displays at {to_ms(display):.1f} ms")
    print(f"  its D-Timestamp is     {to_ms(d_ts):.1f} ms "
          "(display minus the 2-period content convention)")


if __name__ == "__main__":
    main()
