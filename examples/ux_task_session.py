"""A Table 2-style UX task as one continuous session.

Chains three scenes on a single simulated timeline — a heavy app-open
transition, a feed scroll, and an app switch — with idle gaps where the
user's hand moves, then counts the stutters a trained evaluator would
perceive under each architecture (§6.2's methodology).

Run:  python examples/ux_task_session.py
"""

from repro import (
    MATE_60_PRO,
    AnimationDriver,
    SimConfig,
    fdps,
    params_for_target_fdps,
    simulate,
)
from repro.metrics.stutter import count_perceived_stutters, longest_freeze_ms
from repro.units import ms
from repro.workloads.composite import CompositeDriver
from repro.workloads.distributions import PROFILES


def build_session(run: int) -> CompositeDriver:
    hz = MATE_60_PRO.refresh_hz
    scenes = [
        ("open-app", 6.0, "fluctuation-deep", 450.0),
        ("scroll-feed", 4.0, "scattered", 900.0),
        ("switch-app", 8.0, "fluctuation", 400.0),
    ]
    children = []
    for name, target, profile, duration in scenes:
        params = params_for_target_fdps(target, hz, profile=PROFILES[profile])
        children.append(
            AnimationDriver(f"{name}#{run}", params, duration_ns=ms(duration))
        )
    return CompositeDriver(f"ux-session#{run}", children, gap_ns=ms(300))


def main() -> None:
    print(f"device: {MATE_60_PRO.name} ({MATE_60_PRO.refresh_hz} Hz)")
    print("session: open app -> scroll feed -> switch app (300 ms hand gaps)\n")
    for label, architecture in (
        ("vsync 4buf", "vsync"),
        ("dvsync 4buf", "dvsync"),
    ):
        driver = build_session(0)
        result = simulate(
            driver,
            MATE_60_PRO,
            architecture=architecture,
            config=SimConfig(buffer_count=4),
        )
        stutters = count_perceived_stutters(result, speed_at=driver.animation_speed)
        print(f"[{label}]")
        print(f"  frames: {len(result.frames)}  drops: {len(result.effective_drops)}"
              f"  FDPS: {fdps(result):.2f}")
        print(f"  perceived stutters: {stutters}")
        print(f"  longest freeze: {longest_freeze_ms(result):.1f} ms\n")


if __name__ == "__main__":
    main()
