"""Quickstart: VSync vs D-VSync on one drop-prone animation.

Builds a 60 Hz animation workload calibrated to drop ~3 frames/second under
the classic VSync architecture, runs it under both schedulers on a simulated
Pixel 5, and prints the headline metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    PIXEL_5,
    AnimationDriver,
    Arch,
    SimConfig,
    fdps,
    latency_summary,
    params_for_target_fdps,
    simulate,
)
from repro.metrics.stutter import count_perceived_stutters
from repro.units import ms


def build_driver() -> AnimationDriver:
    """A 10-burst transition animation, ~3 FDPS under VSync."""
    params = params_for_target_fdps(target_fdps=3.0, refresh_hz=PIXEL_5.refresh_hz)
    return AnimationDriver(
        "quickstart",
        params,
        duration_ns=ms(400),
        bursts=10,
        burst_period_ns=ms(600),
    )


def main() -> None:
    baseline = simulate(
        build_driver(),
        PIXEL_5,
        architecture=Arch.VSYNC,
        config=SimConfig(buffer_count=3),
    )
    improved = simulate(
        build_driver(), PIXEL_5, config=SimConfig(buffer_count=4)
    )

    print(f"workload: {baseline.scenario} on {PIXEL_5.name} ({PIXEL_5.refresh_hz} Hz)")
    print(f"{'':24s}{'VSync 3buf':>12s}{'D-VSync 4buf':>14s}")
    print(f"{'frames rendered':24s}{len(baseline.frames):>12d}{len(improved.frames):>14d}")
    print(
        f"{'frame drops':24s}{len(baseline.effective_drops):>12d}"
        f"{len(improved.effective_drops):>14d}"
    )
    print(f"{'FDPS':24s}{fdps(baseline):>12.2f}{fdps(improved):>14.2f}")
    print(
        f"{'mean latency (ms)':24s}{latency_summary(baseline).mean_ms:>12.1f}"
        f"{latency_summary(improved).mean_ms:>14.1f}"
    )
    print(
        f"{'perceived stutters':24s}{count_perceived_stutters(baseline):>12d}"
        f"{count_perceived_stutters(improved):>14d}"
    )
    print()
    print("D-VSync details:", {
        k: improved.extra[k]
        for k in ("fpe_triggers_accumulation", "fpe_triggers_sync", "dtv_calibrations")
    })


if __name__ == "__main__":
    main()
