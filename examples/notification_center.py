"""Scenario deep dive: closing the notification center on a Mate 60 Pro.

"cls notif ctr" is one of the paper's worst OS use cases (§3.2: many such
cases only reach 95–105 FPS on the 120 Hz screen). This example runs the
Table 3 scenario under both architectures, prints the frame outcome
distribution, and dumps a perfetto-lite trace of each run for inspection.

Run:  python examples/notification_center.py
"""

from repro import MATE_60_PRO_VULKAN, SimConfig, fdps, simulate
from repro.metrics.frames import FrameOutcome, frame_distribution
from repro.metrics.latency import latency_summary
from repro.trace import schema
from repro.trace.analyze import analyze, decoupling_lead_ms
from repro.trace.record import record_run
from repro.workloads.os_cases import MATE60_VULKAN_TARGETS, scenario_for_case, use_case


def main() -> None:
    case = use_case("cls notif ctr")
    scenario = scenario_for_case(
        case,
        refresh_hz=MATE_60_PRO_VULKAN.refresh_hz,
        target_fdps=MATE60_VULKAN_TARGETS["cls notif ctr"],
        default_profile="fluctuation",
    )
    print(f"case #{case.number}: {case.description}")
    print(f"device: {MATE_60_PRO_VULKAN.name} ({MATE_60_PRO_VULKAN.backend.value})\n")

    runs = {}
    for label in ("vsync", "dvsync"):
        # The declarative Scenario routes through the executor (cached,
        # parallelizable); both arms use 4 buffers like Table 3.
        result = simulate(
            scenario,
            MATE_60_PRO_VULKAN,
            architecture=label,
            config=SimConfig(buffer_count=4),
        )
        runs[label] = result
        distribution = frame_distribution(result)
        print(f"[{label}]")
        print(f"  FDPS                {fdps(result):6.2f}")
        print(f"  mean latency        {latency_summary(result).mean_ms:6.1f} ms")
        for outcome in FrameOutcome:
            print(f"  {outcome.value:18s}  {distribution.fraction(outcome) * 100:5.1f} %")
        trace = record_run(result)
        path = f"notif_center_{label}.trace.json"
        schema.save(trace, path)
        summary = analyze(trace)
        print(f"  trace: {path} (max queue depth {summary.max_queue_depth:.0f})")
        leads = decoupling_lead_ms(trace)
        if leads:
            print(f"  execution lead over display: up to {max(leads):.1f} ms")
        print()


if __name__ == "__main__":
    main()
