"""Scenario deep dive: closing the notification center on a Mate 60 Pro.

"cls notif ctr" is one of the paper's worst OS use cases (§3.2: many such
cases only reach 95–105 FPS on the 120 Hz screen). This example runs the
Table 3 scenario under both architectures, prints the frame outcome
distribution, and dumps a perfetto-lite trace of each run for inspection.

Run:  python examples/notification_center.py
"""

from repro import DVSyncConfig, DVSyncScheduler, MATE_60_PRO_VULKAN, VSyncScheduler, fdps
from repro.metrics.frames import FrameOutcome, frame_distribution
from repro.metrics.latency import latency_summary
from repro.trace.analyze import analyze, decoupling_lead_ms
from repro.trace.format import save_trace
from repro.trace.record import record_run
from repro.workloads.os_cases import MATE60_VULKAN_TARGETS, scenario_for_case, use_case


def main() -> None:
    case = use_case("cls notif ctr")
    scenario = scenario_for_case(
        case,
        refresh_hz=MATE_60_PRO_VULKAN.refresh_hz,
        target_fdps=MATE60_VULKAN_TARGETS["cls notif ctr"],
        default_profile="fluctuation",
    )
    print(f"case #{case.number}: {case.description}")
    print(f"device: {MATE_60_PRO_VULKAN.name} ({MATE_60_PRO_VULKAN.backend.value})\n")

    runs = {}
    for label, build in (
        ("vsync", lambda d: VSyncScheduler(d, MATE_60_PRO_VULKAN, buffer_count=4)),
        ("dvsync", lambda d: DVSyncScheduler(
            d, MATE_60_PRO_VULKAN, DVSyncConfig(buffer_count=4))),
    ):
        result = build(scenario.build_driver()).run()
        runs[label] = result
        distribution = frame_distribution(result)
        print(f"[{label}]")
        print(f"  FDPS                {fdps(result):6.2f}")
        print(f"  mean latency        {latency_summary(result).mean_ms:6.1f} ms")
        for outcome in FrameOutcome:
            print(f"  {outcome.value:18s}  {distribution.fraction(outcome) * 100:5.1f} %")
        trace = record_run(result)
        path = f"notif_center_{label}.trace.json"
        save_trace(trace, path)
        summary = analyze(trace)
        print(f"  trace: {path} (max queue depth {summary.max_queue_depth:.0f})")
        leads = decoupling_lead_ms(trace)
        if leads:
            print(f"  execution lead over display: up to {max(leads):.1f} ms")
        print()


if __name__ == "__main__":
    main()
