"""Composing a DVFS governor with D-VSync's larger execution window (§8).

Related work clocks the CPU so each frame finishes just before its VSync
deadline. D-VSync hands the governor a multi-period window instead, so the
same workload can run at a lower clock level — more dynamic energy saved —
without janking.

Run:  python examples/dvfs_energy_window.py
"""

from repro import (
    PIXEL_5,
    AnimationDriver,
    SimConfig,
    fdps,
    params_for_target_fdps,
    simulate,
)
from repro.extensions import FrequencyGovernor, GovernedDriver
from repro.units import ms
from repro.workloads.distributions import SCATTERED


def build_driver(run: int) -> AnimationDriver:
    params = params_for_target_fdps(1.5, PIXEL_5.refresh_hz, profile=SCATTERED)
    return AnimationDriver(
        f"dvfs-demo#{run}", params, duration_ns=ms(400),
        bursts=16, burst_period_ns=ms(600),
    )


def main() -> None:
    period = PIXEL_5.vsync_period
    arms = [
        ("vsync + DVFS, 1-period window", "vsync", 1.0),
        ("dvsync + DVFS, 3-period window", "dvsync", 3.0),
    ]
    print(f"{'arm':34s}{'FDPS':>6s}{'clock':>8s}{'energy saved':>14s}")
    for label, architecture, window in arms:
        governor = FrequencyGovernor(window_periods=window, period_ns=period)
        driver = GovernedDriver(build_driver(0), governor)
        buffers = 3 if architecture == "vsync" else 4
        result = simulate(
            driver,
            PIXEL_5,
            architecture=architecture,
            config=SimConfig(buffer_count=buffers),
        )
        print(
            f"{label:34s}{fdps(result):>6.2f}{governor.stats.mean_level:>8.2f}"
            f"{governor.stats.energy_saving_percent:>13.1f}%"
        )


if __name__ == "__main__":
    main()
