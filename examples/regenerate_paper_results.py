"""Regenerate paper artifacts from the command line.

Usage:
    python examples/regenerate_paper_results.py fig11 fig15
    python examples/regenerate_paper_results.py --all --quick
    python examples/regenerate_paper_results.py --list
"""

import argparse

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (e.g. fig11 tab02)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--quick", action="store_true", help="subset/fast mode")
    parser.add_argument("--runs", type=int, default=3, help="repetitions per scenario")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args()

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return

    if args.all:
        results = run_all(runs=args.runs, quick=args.quick)
    elif args.ids:
        results = [
            run_experiment(experiment_id, runs=args.runs, quick=args.quick)
            for experiment_id in args.ids
        ]
    else:
        parser.error("give experiment ids, --all, or --list")
        return

    for result in results:
        print(result.render())
        print()


if __name__ == "__main__":
    main()
